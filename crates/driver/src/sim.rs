//! The discrete-event backend: one server + N clients over simulated links.
//!
//! Reproduces the paper's testbed loop (Section V-A): every client submits
//! one action per move period (Table I: 300 ms), the server runs its tick
//! (τ) and push (ω·RTT) cycles, and all messages traverse
//! latency/bandwidth-modeled links. Machines process one event at a time
//! ([`crate::machine::Machine`]); events that find their machine busy are
//! deferred, which is how compute saturation turns into response-time
//! collapse (Figure 6).
//!
//! The harness is generic over [`ProtocolSuite`]: SEVE's four variants and
//! every baseline run under the identical workload, network, and cost
//! model — the apples-to-apples requirement of the evaluation.
//!
//! This loop is the simulator substrate of the unified driver layer. Its
//! timers are the [`crate::timer`] *nominal* discipline inlined (the next
//! firing stays on the nominal grid, scheduled at `max(nominal, now)`, the
//! cycle ends past a hard horizon), and its links accept the same
//! [`FaultPlan`] the threaded backends do — with no faults configured the
//! event schedule is bit-identical to the pre-driver harness, pinned by the
//! golden digests in `tests/golden_equivalence.rs`.

use crate::fault::{FaultPlan, FaultyLink, LinkPartition};
use crate::machine::Machine;
use crate::session::{Resequencer, SessionParams, SessionStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seve_core::consistency::ConsistencyOracle;
use seve_core::engine::{ClientNode, ProtocolSuite, ServerNode, WireSize};
use seve_core::metrics::ServerMetrics;
use seve_net::event::{EventQueue, EventQueueKind};
use seve_net::link::Link;
use seve_net::stats::Summary;
use seve_net::time::{SimDuration, SimTime};
use seve_world::ids::ClientId;
use seve_world::worlds::Workload;
use seve_world::GameWorld;
use std::sync::Arc;

/// Testbed parameters. Defaults are Table I.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// One-way link latency. Table I reports 238 ms *average latency*
    /// between machines, which we read as the round trip (the protocol
    /// config's `rtt`), giving 119 ms each way.
    pub latency: SimDuration,
    /// Per-link bandwidth cap in bits/second (Table I: 100 Kbps).
    pub bandwidth_bps: Option<u64>,
    /// Moves submitted per client (Table I: 100).
    pub moves_per_client: u32,
    /// Move generation period (Table I: every 300 ms).
    pub move_period: SimDuration,
    /// The simulation tick τ driving Algorithm 7 analysis.
    pub tick: SimDuration,
    /// Extra time after the last scheduled move during which the system
    /// drains (messages deliver, completions install). Server tick/push
    /// cycles stop at `last move + drain`, so in *saturated* runs actions
    /// still backlogged then never resolve — response statistics reflect
    /// the actions resolved within the window, exactly as a wall-clock
    /// -bounded testbed run would truncate.
    pub drain: SimDuration,
    /// Seed for move-timer staggering.
    pub seed: u64,
    /// Stagger the clients' move timers (the realistic default). `false`
    /// fires every client on the same instants — the synchronized-tick
    /// adversary of Section III-E ("if each of them tries to pick up the
    /// two forks at the same tick").
    pub stagger: bool,
    /// Event-queue implementation driving the loop. The hierarchical timer
    /// wheel is the default (O(1) schedule/pop keeps thousand-client runs
    /// affordable); the binary heap is retained as the drain-order oracle.
    /// Both pop the identical event sequence, so every digest and metric is
    /// independent of the choice.
    pub event_queue: EventQueueKind,
    /// Session supervision (acked resume protocol). The sim models the
    /// single-address-space limit of the threaded wrappers: acks are
    /// instantaneous (the window trims the moment the client accepts a
    /// frame in order), and retransmit watchdogs are armed only on lanes
    /// that can actually lose or partition — so a fault-free run schedules
    /// not one extra event and stays bit-identical to the golden digests.
    pub session: SessionParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            latency: SimDuration::from_micros(119_000),
            bandwidth_bps: Some(100_000),
            moves_per_client: 100,
            move_period: SimDuration::from_ms(300),
            tick: SimDuration::from_ms(50),
            drain: SimDuration::from_secs(5),
            seed: 0x51_4E5E,
            stagger: true,
            event_queue: EventQueueKind::Wheel,
            session: SessionParams::default(),
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Protocol name (from the suite).
    pub protocol: String,
    /// Number of clients.
    pub clients: usize,
    /// Response time of own actions, ms, merged over all clients.
    pub response_ms: Summary,
    /// Time to drop notices, ms.
    pub drop_notice_ms: Summary,
    /// Total actions submitted.
    pub submitted: u64,
    /// Actions dropped by Algorithm 7.
    pub dropped: u64,
    /// Total bytes over every link (Figure 9's "total data transfer").
    pub total_bytes: u64,
    /// Bytes from server to clients.
    pub server_down_bytes: u64,
    /// Bytes from clients to server.
    pub server_up_bytes: u64,
    /// Total messages over every link.
    pub total_msgs: u64,
    /// Consistency-oracle violations (outcome mismatches + missing reads).
    pub violations: usize,
    /// Replicas' evaluations with unmaterialized read-set objects.
    pub missing_read_evals: u64,
    /// Re-evaluations that changed outcome (must be 0 for SEVE).
    pub replay_divergences: u64,
    /// Out-of-order reconciliations across all clients (protocol-visible;
    /// independent of the checkpoint optimization).
    pub replay_rebuilds: u64,
    /// Log entries actually re-applied during those rebuilds (the real
    /// host-side work; checkpoints and the commute gate shrink this).
    pub replay_entries_replayed: u64,
    /// Rebuilds that resumed from an intermediate checkpoint.
    pub replay_checkpoint_hits: u64,
    /// Out-of-order inserts spliced with no replay at all.
    pub replay_commute_hits: u64,
    /// Total evaluation records cross-checked.
    pub evals_checked: u64,
    /// Total client compute, µs.
    pub client_compute_us: u64,
    /// Total server compute, µs.
    pub server_compute_us: u64,
    /// Server utilization over the run.
    pub server_utilization: f64,
    /// Snapshot of the server metrics.
    pub server: ServerMetrics,
    /// Per-client final stable-state digests (for equality checks in
    /// complete-world modes).
    pub stable_digests: Vec<u64>,
    /// Digest of ζ_S, for servers that maintain one.
    pub committed_digest: Option<u64>,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// Supervision-layer counters (retransmits, acks, reconnects, reaps).
    /// All coping counters are exactly zero on a fault-free run.
    pub session: SessionStats,
}

impl RunResult {
    /// Percentage of submitted actions dropped (Table II).
    pub fn drop_percent(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            100.0 * self.dropped as f64 / self.submitted as f64
        }
    }

    /// Total transfer in kilobytes (Figure 9's unit).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes as f64 / 1000.0
    }
}

enum Ev<U, D> {
    Move {
        client: usize,
    },
    /// A message arriving at the server from `client`.
    Up {
        client: usize,
        msg: U,
    },
    /// A message arriving at client `client`. Under supervision `seq` is
    /// the down-lane sequence number (1-based); unsupervised lanes carry 0.
    Down {
        client: usize,
        msg: D,
        seq: u64,
    },
    /// The server machine may be free: drain its inbox.
    WakeServer,
    /// Client `client`'s machine may be free: drain its inbox.
    WakeClient {
        client: usize,
    },
    Tick,
    Push,
    /// Retransmit watchdog for `client`'s resend window (armed only on
    /// lanes that can fault — never scheduled on a clean run).
    Retransmit {
        client: usize,
    },
    /// End of `client`'s link partition: reconnect, resume, flush.
    Heal {
        client: usize,
    },
    /// Liveness deadline for a crashed `client`: reap its lane.
    Reap {
        client: usize,
    },
}

/// Schedule one message at each faulted arrival time. The single-arrival
/// path (always taken with no faults) moves the message without cloning, so
/// the scheduling sequence is exactly the pre-fault harness's.
fn fan<M: Clone>(arrivals: &[SimTime], msg: M, mut sched: impl FnMut(SimTime, M)) {
    if arrivals.len() == 1 {
        sched(arrivals[0], msg);
    } else {
        for &at in arrivals {
            sched(at, msg.clone());
        }
    }
}

/// The simulation: builds a suite over a world and runs the Table I loop.
pub struct Simulation<'a, W: GameWorld, P: ProtocolSuite<W>> {
    world: Arc<W>,
    suite: &'a P,
    cfg: SimConfig,
    faults: FaultPlan,
}

impl<'a, W: GameWorld, P: ProtocolSuite<W>> Simulation<'a, W, P> {
    /// Prepare a simulation of `suite` over `world` (no faults).
    pub fn new(world: Arc<W>, suite: &'a P, cfg: SimConfig) -> Self {
        Self {
            world,
            suite,
            cfg,
            faults: FaultPlan::none(),
        }
    }

    /// Inject `faults` into every link (and crash the scheduled clients).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Run to completion with the given workload, returning all metrics.
    pub fn run(&self, workload: &mut dyn Workload<W>) -> RunResult {
        let n = self.world.num_clients();
        let cfg = &self.cfg;
        let (mut server, mut clients) = self.suite.build(Arc::clone(&self.world));
        assert_eq!(clients.len(), n);

        let mut queue: EventQueue<Ev<P::Up, P::Down>> = EventQueue::with_kind(cfg.event_queue);
        let mut client_mach = vec![Machine::new(); n];
        let mut server_mach = Machine::new();
        let mut up_links: Vec<FaultyLink> = (0..n)
            .map(|i| {
                FaultyLink::new(
                    Link::new(cfg.latency, cfg.bandwidth_bps),
                    self.faults.up.clone(),
                    FaultPlan::up_stream(i),
                )
            })
            .collect();
        let mut down_links: Vec<FaultyLink> = (0..n)
            .map(|i| {
                FaultyLink::new(
                    Link::new(cfg.latency, cfg.bandwidth_bps),
                    self.faults.down.clone(),
                    FaultPlan::down_stream(i),
                )
            })
            .collect();

        // Crash schedule: client i disconnects abruptly after its k-th
        // submission. In-flight traffic it already sent still arrives (a
        // dead socket does not recall transmitted bytes); traffic *to* it
        // is discarded.
        let crash_at: Vec<Option<u32>> = (0..n)
            .map(|i| self.faults.crash_for(ClientId(i as u16)))
            .collect();
        let mut crashed = vec![false; n];

        // Session supervision state. The sim collapses the ack round trip:
        // the server's resend window trims the instant the client accepts a
        // frame in order (both halves live in this address space), which
        // keeps a fault-free supervised schedule event-for-event identical
        // to the unsupervised one. Retransmit watchdogs are armed only on
        // lanes that can actually lose traffic (down-lane faults configured
        // or a partition scheduled), never on clean lanes.
        let sup = cfg.session.supervised;
        let rto = SimDuration::from_micros(cfg.session.rto.as_micros() as u64);
        let liveness = SimDuration::from_micros(cfg.session.liveness.as_micros() as u64);
        let partition_at: Vec<Option<LinkPartition>> = (0..n)
            .map(|i| self.faults.partition_for(ClientId(i as u16)))
            .collect();
        let down_can_fault = !self.faults.down.is_none();
        let watch: Vec<bool> = (0..n)
            .map(|i| sup && (down_can_fault || partition_at[i].is_some()))
            .collect();
        let mut windows: Vec<std::collections::VecDeque<(u64, P::Down)>> =
            (0..n).map(|_| std::collections::VecDeque::new()).collect();
        let mut next_seq: Vec<u64> = vec![1; n];
        let mut reseq: Vec<Resequencer<P::Down>> = (0..n).map(|_| Resequencer::new()).collect();
        let mut acked: Vec<u64> = vec![0; n];
        let mut attempts: Vec<u32> = vec![0; n];
        let mut armed = vec![false; n];
        let mut reaped = vec![false; n];
        let mut last_progress: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut partition_until: Vec<Option<SimTime>> = vec![None; n];
        let mut pending_up: Vec<Vec<P::Up>> = (0..n).map(|_| Vec::new()).collect();
        let mut reseq_out: Vec<P::Down> = Vec::new();
        let mut stats = SessionStats::default();

        // Stagger the move timers: clients are not synchronized, and "the
        // random order of arrival of actions at the server will ensure
        // fairness" (Section III-E).
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut next_move: Vec<SimTime> = (0..n)
            .map(|_| {
                if cfg.stagger {
                    SimTime(rng.gen_range(0..cfg.move_period.as_micros().max(1)))
                } else {
                    SimTime::ZERO
                }
            })
            .collect();
        let mut moves_left = vec![cfg.moves_per_client; n];
        for (i, &t) in next_move.iter().enumerate() {
            if cfg.moves_per_client > 0 {
                queue.schedule(t, Ev::Move { client: i });
            }
        }
        let last_move = next_move
            .iter()
            .map(|t| {
                *t + cfg
                    .move_period
                    .scaled((cfg.moves_per_client.saturating_sub(1)) as f64)
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        let hard_end = last_move + cfg.drain;

        // Server cycles.
        let mut tick_nominal = SimTime::ZERO + cfg.tick;
        queue.schedule(tick_nominal, Ev::Tick);
        let push_period = server.push_period();
        let mut push_nominal = SimTime::ZERO;
        if let Some(p) = push_period {
            push_nominal = SimTime::ZERO + p;
            queue.schedule(push_nominal, Ev::Push);
        }

        let mut up_out: Vec<P::Up> = Vec::new();
        let mut down_out: Vec<(ClientId, P::Down)> = Vec::new();
        let mut arrivals: Vec<SimTime> = Vec::new();
        let mut end_time = SimTime::ZERO;

        // Per-node FIFO inboxes: a message arriving while the node is busy
        // queues here, preserving arrival order. (Rescheduling the event
        // itself would let a later arrival overtake a deferred one when
        // their retry times tie — a reordering a real TCP stream never
        // exhibits.)
        let mut server_inbox: std::collections::VecDeque<(usize, P::Up)> =
            std::collections::VecDeque::new();
        let mut client_inbox: Vec<std::collections::VecDeque<P::Down>> =
            (0..n).map(|_| std::collections::VecDeque::new()).collect();

        // One down-lane emission, supervision-aware: assign the sequence
        // number, remember the frame in the resend window, arm the
        // retransmit watchdog on faultable lanes. A macro rather than a
        // closure so the four emission sites (deliver, wake, tick, push)
        // share the bookkeeping without fighting the borrow checker.
        macro_rules! send_down {
            ($d:expr, $m:expr, $done:expr) => {{
                let d: usize = $d;
                let done = $done;
                if sup && reaped[d] {
                    // Reaped lane: the server knows this client is gone —
                    // nothing is sent, nothing buffers.
                } else {
                    let m = $m;
                    let seq = if sup {
                        let s = next_seq[d];
                        next_seq[d] += 1;
                        if windows[d].is_empty() {
                            last_progress[d] = done;
                        }
                        windows[d].push_back((s, m.clone()));
                        s
                    } else {
                        0
                    };
                    down_links[d].send(done, m.wire_bytes(), &mut arrivals);
                    fan(&arrivals, m, |at, m| {
                        queue.schedule(
                            at,
                            Ev::Down {
                                client: d,
                                msg: m,
                                seq,
                            },
                        )
                    });
                    if watch[d] && !armed[d] {
                        armed[d] = true;
                        queue.schedule(done + rto, Ev::Retransmit { client: d });
                    }
                }
            }};
        }

        // One up-lane emission: a partitioned client buffers instead of
        // sending (the bytes count when the flush actually happens, at
        // heal).
        macro_rules! send_up {
            ($c:expr, $m:expr, $done:expr) => {{
                let c: usize = $c;
                let done = $done;
                let m = $m;
                if sup && partition_until[c].is_some() {
                    pending_up[c].push(m);
                } else {
                    up_links[c].send(done, m.wire_bytes(), &mut arrivals);
                    fan(&arrivals, m, |at, m| {
                        queue.schedule(at, Ev::Up { client: c, msg: m })
                    });
                }
            }};
        }

        while let Some((now, ev)) = queue.pop() {
            end_time = now;
            match ev {
                Ev::Move { client } => {
                    if crashed[client] || reaped[client] {
                        continue;
                    }
                    if client_mach[client].is_busy(now) {
                        queue.schedule(client_mach[client].free_at(), Ev::Move { client });
                        continue;
                    }
                    let c = &mut clients[client];
                    let seq = c.next_seq();
                    let id = ClientId(client as u16);
                    up_out.clear();
                    if let Some(action) = workload.next_action(id, seq, c.optimistic(), now.as_ms())
                    {
                        let cost = c.submit(now, action, &mut up_out);
                        let done = client_mach[client].run(now, cost);
                        for msg in up_out.drain(..) {
                            send_up!(client, msg, done);
                        }
                    }
                    moves_left[client] -= 1;
                    if crash_at[client]
                        .is_some_and(|k| cfg.moves_per_client - moves_left[client] >= k)
                    {
                        crashed[client] = true;
                        client_inbox[client].clear();
                        if sup {
                            // Liveness supervision: the lane stays up for
                            // the resume window, then the server reaps it.
                            queue.schedule(now + liveness, Ev::Reap { client });
                        }
                        continue;
                    }
                    if sup {
                        if let Some(p) = partition_at[client] {
                            if cfg.moves_per_client - moves_left[client] == p.after_submissions {
                                let until =
                                    now + SimDuration::from_micros(p.duration.as_micros() as u64);
                                partition_until[client] = Some(until);
                                queue.schedule(until, Ev::Heal { client });
                            }
                        }
                    }
                    if moves_left[client] > 0 {
                        next_move[client] += cfg.move_period;
                        queue.schedule(next_move[client].max(now), Ev::Move { client });
                    }
                }
                Ev::Up { client, msg } => {
                    if sup && reaped[client] {
                        // A reaped lane swallows late traffic.
                        continue;
                    }
                    server_inbox.push_back((client, msg));
                    if server_mach.is_busy(now) {
                        queue.schedule(server_mach.free_at(), Ev::WakeServer);
                        continue;
                    }
                    let (client, msg) = server_inbox.pop_front().expect("just pushed");
                    down_out.clear();
                    let cost = server.deliver(now, ClientId(client as u16), msg, &mut down_out);
                    let done = server_mach.run(now, cost);
                    for (dest, m) in down_out.drain(..) {
                        send_down!(dest.index(), m, done);
                    }
                    if !server_inbox.is_empty() {
                        queue.schedule(done, Ev::WakeServer);
                    }
                }
                Ev::WakeServer => {
                    if server_inbox.is_empty() {
                        continue;
                    }
                    if server_mach.is_busy(now) {
                        queue.schedule(server_mach.free_at(), Ev::WakeServer);
                        continue;
                    }
                    let (client, msg) = server_inbox.pop_front().expect("checked non-empty");
                    down_out.clear();
                    let cost = server.deliver(now, ClientId(client as u16), msg, &mut down_out);
                    let done = server_mach.run(now, cost);
                    for (dest, m) in down_out.drain(..) {
                        send_down!(dest.index(), m, done);
                    }
                    if !server_inbox.is_empty() {
                        queue.schedule(done, Ev::WakeServer);
                    }
                }
                Ev::Down { client, msg, seq } => {
                    if crashed[client] || reaped[client] {
                        continue;
                    }
                    if sup {
                        if partition_until[client].is_some_and(|t| now < t) {
                            // The link is dark: the frame is lost. The
                            // resume handshake at heal retransmits it.
                            continue;
                        }
                        let before = client_inbox[client].len();
                        reseq[client].accept(seq, msg, &mut reseq_out);
                        for m in reseq_out.drain(..) {
                            client_inbox[client].push_back(m);
                        }
                        // Instant ack: trim the resend window to the
                        // client's cumulative ack (both halves share this
                        // address space, so the ack round trip collapses —
                        // zero cost, zero bytes, zero events).
                        let cum = reseq[client].cum_ack();
                        if cum > acked[client] {
                            acked[client] = cum;
                            stats.acks += 1;
                            while windows[client].front().is_some_and(|&(s, _)| s <= cum) {
                                windows[client].pop_front();
                            }
                            attempts[client] = 0;
                            last_progress[client] = now;
                        }
                        if client_inbox[client].len() == before {
                            // Held out of order (or a duplicate): nothing
                            // newly deliverable.
                            continue;
                        }
                    } else {
                        client_inbox[client].push_back(msg);
                    }
                    if client_mach[client].is_busy(now) {
                        queue.schedule(client_mach[client].free_at(), Ev::WakeClient { client });
                        continue;
                    }
                    let msg = client_inbox[client]
                        .pop_front()
                        .expect("released at least one");
                    up_out.clear();
                    let cost = clients[client].deliver(now, msg, &mut up_out);
                    let done = client_mach[client].run(now, cost);
                    for m in up_out.drain(..) {
                        send_up!(client, m, done);
                    }
                    if !client_inbox[client].is_empty() {
                        queue.schedule(done, Ev::WakeClient { client });
                    }
                }
                Ev::WakeClient { client } => {
                    if crashed[client] || reaped[client] || client_inbox[client].is_empty() {
                        continue;
                    }
                    if client_mach[client].is_busy(now) {
                        queue.schedule(client_mach[client].free_at(), Ev::WakeClient { client });
                        continue;
                    }
                    let msg = client_inbox[client].pop_front().expect("checked non-empty");
                    up_out.clear();
                    let cost = clients[client].deliver(now, msg, &mut up_out);
                    let done = client_mach[client].run(now, cost);
                    for m in up_out.drain(..) {
                        send_up!(client, m, done);
                    }
                    if !client_inbox[client].is_empty() {
                        queue.schedule(done, Ev::WakeClient { client });
                    }
                }
                Ev::Tick => {
                    if server_mach.is_busy(now) {
                        queue.schedule(server_mach.free_at(), Ev::Tick);
                        continue;
                    }
                    down_out.clear();
                    let cost = server.tick(now, &mut down_out);
                    let done = server_mach.run(now, cost);
                    for (dest, m) in down_out.drain(..) {
                        send_down!(dest.index(), m, done);
                    }
                    tick_nominal += cfg.tick;
                    if tick_nominal <= hard_end {
                        queue.schedule(tick_nominal.max(now), Ev::Tick);
                    }
                }
                Ev::Push => {
                    if server_mach.is_busy(now) {
                        queue.schedule(server_mach.free_at(), Ev::Push);
                        continue;
                    }
                    down_out.clear();
                    let cost = server.push_tick(now, &mut down_out);
                    let done = server_mach.run(now, cost);
                    for (dest, m) in down_out.drain(..) {
                        send_down!(dest.index(), m, done);
                    }
                    let p = push_period.expect("push event only scheduled with a period");
                    push_nominal += p;
                    if push_nominal <= hard_end {
                        queue.schedule(push_nominal.max(now), Ev::Push);
                    }
                }
                Ev::Retransmit { client } => {
                    armed[client] = false;
                    if !sup || reaped[client] || windows[client].is_empty() {
                        continue;
                    }
                    if partition_until[client].is_some() {
                        // Dark link: the heal event will retransmit the
                        // window; keep the watchdog alive past it.
                        armed[client] = true;
                        queue.schedule(now + rto, Ev::Retransmit { client });
                        continue;
                    }
                    let due = last_progress[client] + rto;
                    if now < due {
                        armed[client] = true;
                        queue.schedule(due, Ev::Retransmit { client });
                        continue;
                    }
                    attempts[client] += 1;
                    if attempts[client] >= cfg.session.give_up {
                        // Unreachable after give_up windows: reap the lane.
                        reaped[client] = true;
                        windows[client].clear();
                        client_inbox[client].clear();
                        pending_up[client].clear();
                        stats.reaps += 1;
                        continue;
                    }
                    // Go-back-N: resend every unacked frame. The faulty
                    // link re-rolls verdicts per transmission, so repeated
                    // rounds converge.
                    stats.retransmits += windows[client].len() as u64;
                    let burst: Vec<(u64, P::Down)> = windows[client].iter().cloned().collect();
                    for (seq, m) in burst {
                        down_links[client].send(now, m.wire_bytes(), &mut arrivals);
                        fan(&arrivals, m, |at, m| {
                            queue.schedule(
                                at,
                                Ev::Down {
                                    client,
                                    msg: m,
                                    seq,
                                },
                            )
                        });
                    }
                    last_progress[client] = now;
                    armed[client] = true;
                    queue.schedule(now + rto, Ev::Retransmit { client });
                }
                Ev::Heal { client } => {
                    if !sup || crashed[client] || reaped[client] {
                        continue;
                    }
                    partition_until[client] = None;
                    stats.reconnects += 1;
                    // Resume handshake: the client reports its last
                    // cumulative ack, the server retransmits exactly the
                    // frames past it (already-delivered frames are never
                    // replayed — the resequencer would drop them anyway).
                    stats.retransmits += windows[client].len() as u64;
                    let burst: Vec<(u64, P::Down)> = windows[client].iter().cloned().collect();
                    for (seq, m) in burst {
                        down_links[client].send(now, m.wire_bytes(), &mut arrivals);
                        fan(&arrivals, m, |at, m| {
                            queue.schedule(
                                at,
                                Ev::Down {
                                    client,
                                    msg: m,
                                    seq,
                                },
                            )
                        });
                    }
                    last_progress[client] = now;
                    // Flush the ups buffered while the link was dark; their
                    // bytes count now, when they actually cross the wire.
                    let ups = std::mem::take(&mut pending_up[client]);
                    for m in ups {
                        up_links[client].send(now, m.wire_bytes(), &mut arrivals);
                        fan(&arrivals, m, |at, m| {
                            queue.schedule(at, Ev::Up { client, msg: m })
                        });
                    }
                }
                Ev::Reap { client } => {
                    if !sup || reaped[client] {
                        continue;
                    }
                    // Liveness expired with no resume: release the lane and
                    // every buffer it pinned.
                    reaped[client] = true;
                    windows[client].clear();
                    client_inbox[client].clear();
                    pending_up[client].clear();
                    stats.reaps += 1;
                }
            }
        }

        // Collect metrics.
        let mut oracle = ConsistencyOracle::new();
        let mut response_ms = Summary::new();
        let mut drop_notice_ms = Summary::new();
        let mut submitted = 0u64;
        let mut dropped = 0u64;
        let mut missing = 0u64;
        let mut client_compute = 0u64;
        let mut divergences = 0u64;
        let mut rebuilds = 0u64;
        let mut entries_replayed = 0u64;
        let mut checkpoint_hits = 0u64;
        let mut commute_hits = 0u64;
        let mut stable_digests = Vec::with_capacity(n);
        for c in clients.iter_mut() {
            stable_digests.push(c.stable().digest());
            let m = c.metrics_mut();
            response_ms.merge(&m.response_ms);
            drop_notice_ms.merge(&m.drop_notice_ms);
            submitted += m.submitted;
            dropped += m.dropped;
            client_compute += m.compute_us;
            divergences += m.replay_divergences;
            rebuilds += m.replay_rebuilds;
            entries_replayed += m.replay_entries_replayed;
            checkpoint_hits += m.replay_checkpoint_hits;
            commute_hits += m.replay_commute_hits;
            for rec in m.take_eval_records() {
                missing += u64::from(rec.missing_reads > 0);
                oracle.observe(&rec);
            }
        }
        if std::env::var("SEVE_DEBUG_VIOL").is_ok() {
            if let Some(root) = oracle.first_input_mismatch() {
                eprintln!("ROOT first input mismatch at pos {root}");
            }
        }
        let total_bytes: u64 = up_links
            .iter()
            .chain(down_links.iter())
            .map(|l| l.link().bytes_sent())
            .sum();
        let total_msgs: u64 = up_links
            .iter()
            .chain(down_links.iter())
            .map(|l| l.link().msgs_sent())
            .sum();
        let server_down_bytes: u64 = down_links.iter().map(|l| l.link().bytes_sent()).sum();
        let server_up_bytes: u64 = up_links.iter().map(|l| l.link().bytes_sent()).sum();
        let duration = end_time - SimTime::ZERO;

        for r in &reseq {
            stats.dups_dropped += r.dups_dropped;
            stats.holds += r.holds;
        }
        let mut server_metrics = server.metrics().clone();
        server_metrics.stage.session_retransmits += stats.retransmits;
        server_metrics.stage.session_acks += stats.acks;
        server_metrics.stage.session_reconnects += stats.reconnects;
        server_metrics.stage.session_reaps += stats.reaps;
        server_metrics.stage.session_sheds += stats.sheds;

        RunResult {
            protocol: self.suite.name().to_string(),
            clients: n,
            response_ms,
            drop_notice_ms,
            submitted,
            dropped,
            total_bytes,
            server_down_bytes,
            server_up_bytes,
            total_msgs,
            violations: oracle.violations().len(),
            missing_read_evals: missing,
            replay_divergences: divergences,
            replay_rebuilds: rebuilds,
            replay_entries_replayed: entries_replayed,
            replay_checkpoint_hits: checkpoint_hits,
            replay_commute_hits: commute_hits,
            evals_checked: oracle.records(),
            client_compute_us: client_compute,
            server_compute_us: server_metrics.compute_us,
            server_utilization: server_mach.utilization(duration),
            server: server_metrics,
            stable_digests,
            committed_digest: server.committed().map(|s| s.digest()),
            duration,
            session: stats,
        }
    }
}

/// Aggregate of repeated runs with distinct stagger seeds — the paper's
/// "averaged over 10 runs of the system" methodology. Each run is still
/// individually deterministic.
#[derive(Clone, Debug)]
pub struct AveragedResult {
    /// The individual runs, in seed order.
    pub runs: Vec<RunResult>,
}

impl AveragedResult {
    /// Mean of the per-run mean responses, ms.
    pub fn mean_response_ms(&self) -> f64 {
        let n = self.runs.len().max(1) as f64;
        self.runs.iter().map(|r| r.response_ms.mean()).sum::<f64>() / n
    }

    /// Mean of the per-run drop percentages.
    pub fn mean_drop_percent(&self) -> f64 {
        let n = self.runs.len().max(1) as f64;
        self.runs.iter().map(RunResult::drop_percent).sum::<f64>() / n
    }

    /// Mean total transfer, kB.
    pub fn mean_total_kb(&self) -> f64 {
        let n = self.runs.len().max(1) as f64;
        self.runs.iter().map(RunResult::total_kb).sum::<f64>() / n
    }

    /// Total violations across every run (must be zero for SEVE).
    pub fn total_violations(&self) -> usize {
        self.runs.iter().map(|r| r.violations).sum()
    }
}

impl<'a, W: GameWorld, P: ProtocolSuite<W>> Simulation<'a, W, P> {
    /// Run `repeats` times with derived seeds, averaging the metrics.
    /// `make_workload` builds a fresh workload per run.
    pub fn run_repeated(
        &self,
        repeats: usize,
        mut make_workload: impl FnMut() -> Box<dyn Workload<W>>,
    ) -> AveragedResult {
        let runs = (0..repeats)
            .map(|i| {
                let mut cfg = self.cfg.clone();
                cfg.seed = cfg
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1);
                let sim = Simulation::new(Arc::clone(&self.world), self.suite, cfg)
                    .with_faults(self.faults.clone());
                let mut wl = make_workload();
                sim.run(wl.as_mut())
            })
            .collect();
        AveragedResult { runs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPolicy;
    use seve_core::config::{ProtocolConfig, ServerMode};
    use seve_core::server::SeveSuite;
    use seve_world::worlds::dining::{DiningConfig, DiningWorkload, DiningWorld};

    fn small_cfg(moves: u32) -> SimConfig {
        SimConfig {
            moves_per_client: moves,
            ..SimConfig::default()
        }
    }

    fn run_mode(mode: ServerMode, philosophers: usize, moves: u32) -> RunResult {
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(mode));
        let mut wl = DiningWorkload::new(&world);
        Simulation::new(world, &suite, small_cfg(moves)).run(&mut wl)
    }

    #[test]
    fn basic_mode_everyone_converges_and_is_consistent() {
        let r = run_mode(ServerMode::Basic, 6, 8);
        assert_eq!(r.submitted, 48);
        assert_eq!(r.violations, 0, "Theorem 1");
        assert_eq!(r.missing_read_evals, 0);
        assert_eq!(r.replay_divergences, 0);
        // Complete world: every stable replica is identical after drain.
        assert!(
            r.stable_digests.windows(2).all(|w| w[0] == w[1]),
            "basic-mode replicas must converge exactly"
        );
        // Response ≈ RTT (238 ms) plus small processing.
        assert!(r.response_ms.count() > 0);
        let mean = r.response_ms.mean();
        assert!(
            (230.0..400.0).contains(&mean),
            "basic response ≈ one round trip, got {mean}"
        );
    }

    #[test]
    fn incomplete_mode_is_consistent_and_installs() {
        let r = run_mode(ServerMode::Incomplete, 6, 8);
        assert_eq!(r.violations, 0, "Theorem 1");
        assert_eq!(r.replay_divergences, 0);
        assert!(r.server.installed > 0, "completions must install into ζ_S");
        assert!(r.committed_digest.is_some());
        let mean = r.response_ms.mean();
        assert!(
            (230.0..400.0).contains(&mean),
            "incomplete response ≈ one round trip, got {mean}"
        );
    }

    #[test]
    fn info_bound_meets_the_response_bound() {
        let r = run_mode(ServerMode::InfoBound, 16, 10);
        assert_eq!(r.violations, 0, "Theorem 1");
        assert_eq!(r.replay_divergences, 0);
        let bound = ProtocolConfig::default().response_bound_ms();
        let mean = r.response_ms.mean();
        // (1+ω)RTT plus tick/push discretization slack.
        assert!(
            mean <= bound + 120.0,
            "mean response {mean} must be near the (1+ω)RTT bound {bound}"
        );
        assert!(mean >= 230.0, "cannot beat the network, got {mean}");
    }

    #[test]
    fn run_repeated_averages_distinct_seeds() {
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 6,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
        let sim = Simulation::new(Arc::clone(&world), &suite, small_cfg(5));
        let avg = sim.run_repeated(3, || Box::new(DiningWorkload::new(&world)));
        assert_eq!(avg.runs.len(), 3);
        assert_eq!(avg.total_violations(), 0);
        assert!(avg.mean_response_ms() > 200.0);
        // Distinct seeds ⇒ at least two runs differ somewhere.
        let distinct = avg
            .runs
            .windows(2)
            .any(|w| w[0].response_ms.samples() != w[1].response_ms.samples());
        assert!(distinct, "seed derivation must vary the stagger");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_mode(ServerMode::InfoBound, 8, 6);
        let b = run_mode(ServerMode::InfoBound, 8, 6);
        assert_eq!(a.response_ms.samples(), b.response_ms.samples());
        assert_eq!(a.total_bytes, b.total_bytes);
        assert_eq!(a.stable_digests, b.stable_digests);
        assert_eq!(a.committed_digest, b.committed_digest);
    }

    #[test]
    fn heap_and_wheel_queues_drive_identical_runs() {
        // The timer wheel must pop the exact event sequence the heap
        // oracle does — same digests, same byte counts, same timings.
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 8,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
        let run = |kind: EventQueueKind| {
            let mut wl = DiningWorkload::new(&world);
            let cfg = SimConfig {
                moves_per_client: 8,
                event_queue: kind,
                ..SimConfig::default()
            };
            Simulation::new(Arc::clone(&world), &suite, cfg).run(&mut wl)
        };
        let wheel = run(EventQueueKind::Wheel);
        let heap = run(EventQueueKind::Heap);
        assert_eq!(wheel.response_ms.samples(), heap.response_ms.samples());
        assert_eq!(wheel.total_bytes, heap.total_bytes);
        assert_eq!(wheel.total_msgs, heap.total_msgs);
        assert_eq!(wheel.stable_digests, heap.stable_digests);
        assert_eq!(wheel.committed_digest, heap.committed_digest);
        assert_eq!(wheel.duration, heap.duration);
    }

    #[test]
    fn synchronized_mode_fires_all_clients_together() {
        // stagger=false is the Section III-E adversary: with every grab on
        // the same tick, Algorithm 7 must drop some to break the ring
        // chain, while staggered submissions mostly slip through.
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 24,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
        let run = |stagger: bool| {
            let mut wl = DiningWorkload::new(&world);
            let sim = SimConfig {
                moves_per_client: 10,
                stagger,
                ..SimConfig::default()
            };
            Simulation::new(Arc::clone(&world), &suite, sim).run(&mut wl)
        };
        let sync = run(false);
        let staggered = run(true);
        assert_eq!(sync.violations, 0);
        assert_eq!(staggered.violations, 0);
        assert!(
            sync.dropped > staggered.dropped,
            "synchronized grabs must force more chain-breaking: {} vs {}",
            sync.dropped,
            staggered.dropped
        );
    }

    #[test]
    fn gc_notices_bound_client_replay_logs() {
        // With a small gc_every, long runs must not accumulate unbounded
        // client logs (checked indirectly: the run completes and commits
        // everything; the log length itself is internal).
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 8,
            ..DiningConfig::default()
        }));
        let mut cfg = ProtocolConfig::with_mode(ServerMode::Incomplete);
        cfg.gc_every = 8;
        let suite = SeveSuite::new(cfg);
        let mut wl = DiningWorkload::new(&world);
        let sim = SimConfig {
            moves_per_client: 20,
            ..SimConfig::default()
        };
        let r = Simulation::new(world, &suite, sim).run(&mut wl);
        assert_eq!(r.violations, 0);
        assert!(r.server.installed > 100, "most actions committed");
    }

    #[test]
    fn first_bound_consistent_without_dropping() {
        let r = run_mode(ServerMode::FirstBound, 8, 6);
        assert_eq!(r.violations, 0);
        assert_eq!(r.dropped, 0, "first bound never drops");
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 8,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
        let mut wl_a = DiningWorkload::new(&world);
        let mut wl_b = DiningWorkload::new(&world);
        let plain = Simulation::new(Arc::clone(&world), &suite, small_cfg(6)).run(&mut wl_a);
        let faulted = Simulation::new(Arc::clone(&world), &suite, small_cfg(6))
            .with_faults(FaultPlan::none())
            .run(&mut wl_b);
        assert_eq!(plain.response_ms.samples(), faulted.response_ms.samples());
        assert_eq!(plain.total_bytes, faulted.total_bytes);
        assert_eq!(plain.total_msgs, faulted.total_msgs);
        assert_eq!(plain.stable_digests, faulted.stable_digests);
        assert_eq!(plain.committed_digest, faulted.committed_digest);
        assert_eq!(plain.duration, faulted.duration);
    }

    #[test]
    fn crashed_client_ends_quietly_and_survivors_converge() {
        // Basic mode: the world is complete, so surviving replicas must
        // agree exactly (incomplete modes keep legitimately partial
        // replicas, where digest equality is not the contract).
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 6,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
        let mut wl = DiningWorkload::new(&world);
        let plan = FaultPlan {
            crashes: vec![(ClientId(2), 3)],
            ..FaultPlan::default()
        };
        let r = Simulation::new(Arc::clone(&world), &suite, small_cfg(8))
            .with_faults(plan)
            .run(&mut wl);
        assert_eq!(r.violations, 0, "Theorem 1 among performed evaluations");
        assert_eq!(r.replay_divergences, 0);
        // The crashed client stopped after 3 submissions.
        assert_eq!(r.submitted, 5 * 8 + 3);
        // Survivors (all but index 2) still agree exactly.
        let survivors: Vec<u64> = r
            .stable_digests
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 2)
            .map(|(_, &d)| d)
            .collect();
        assert!(
            survivors.windows(2).all(|w| w[0] == w[1]),
            "surviving replicas must converge"
        );
    }

    #[test]
    fn absorbed_faults_preserve_consistency_and_convergence() {
        // The protocol absorbs: any disorder on the up lane (arrival order
        // *is* serialization order, submissions dedup by action id,
        // completions are idempotent), and duplication on the down lane
        // (pushes dedup by queue position). Nothing is dropped, so
        // Theorem 1 and complete-world convergence must both survive.
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 6,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
        let mut wl = DiningWorkload::new(&world);
        let plan = FaultPlan {
            up: FaultPolicy {
                duplicate: 0.2,
                reorder: 0.2,
                delay: 0.2,
                ..FaultPolicy::default()
            },
            down: FaultPolicy {
                duplicate: 0.2,
                ..FaultPolicy::default()
            },
            ..FaultPlan::default()
        };
        let r = Simulation::new(Arc::clone(&world), &suite, small_cfg(10))
            .with_faults(plan)
            .run(&mut wl);
        assert_eq!(r.violations, 0, "Theorem 1 under absorbed faults");
        assert_eq!(r.replay_divergences, 0);
        assert!(
            r.stable_digests.windows(2).all(|w| w[0] == w[1]),
            "replicas must converge despite up-lane disorder and duplication"
        );
    }

    #[test]
    fn unsupervised_down_lane_reordering_is_detected_by_the_oracle() {
        // Down-lane FIFO is load-bearing: the closure property guarantees
        // an action's support is *sent* before its dependents, so a
        // transport that inverts down-lane delivery breaks the premise a
        // replica's provisional evaluations rest on. With supervision off
        // (the PR-5 envelope) that is documented degradation — and the
        // consistency oracle must catch it, not paper over it.
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 6,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
        let mut wl = DiningWorkload::new(&world);
        let plan = FaultPlan {
            down: FaultPolicy {
                reorder: 0.3,
                ..FaultPolicy::default()
            },
            ..FaultPlan::default()
        };
        let cfg = SimConfig {
            session: SessionParams::unsupervised(),
            ..small_cfg(10)
        };
        let r = Simulation::new(Arc::clone(&world), &suite, cfg)
            .with_faults(plan)
            .run(&mut wl);
        assert!(
            r.replay_rebuilds > 0,
            "reordered pushes must exercise out-of-order reconciliation"
        );
        assert!(
            r.violations > 0,
            "the oracle must detect evaluations whose support arrived late"
        );
    }

    #[test]
    fn supervised_down_lane_reordering_is_recovered() {
        // Same fault plan, supervision on (the default): the resequencer
        // restores down-lane FIFO before the replica sees a single frame,
        // so the run is indistinguishable from a clean one — bit-identical
        // digests, zero violations, zero rebuilds.
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 6,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
        let plan = FaultPlan {
            down: FaultPolicy {
                reorder: 0.3,
                ..FaultPolicy::default()
            },
            ..FaultPlan::default()
        };
        let mut wl_clean = DiningWorkload::new(&world);
        let clean = Simulation::new(Arc::clone(&world), &suite, small_cfg(10)).run(&mut wl_clean);
        let mut wl = DiningWorkload::new(&world);
        let r = Simulation::new(Arc::clone(&world), &suite, small_cfg(10))
            .with_faults(plan)
            .run(&mut wl);
        assert_eq!(r.violations, 0, "supervision must absorb the reordering");
        assert_eq!(r.replay_divergences, 0);
        // Dining submissions are timing-sensitive (delayed deliveries shift
        // what each philosopher tries next), so the faulted run is a
        // *different* valid run — the contract here is convergence, not
        // bytewise identity with the clean schedule. The timing-insensitive
        // digest-identity cells live in tests/fault_matrix.rs.
        assert!(
            r.stable_digests.windows(2).all(|w| w[0] == w[1]),
            "replicas must converge despite down-lane reordering"
        );
        assert!(
            r.session.holds > 0,
            "the plan must actually reorder something"
        );
        assert_eq!(clean.session.coping(), 0, "clean runs cope with nothing");
    }
}

//! Cadence state machines: the tick (τ), push (ω·RTT), and move-period
//! timers every node runs, factored out of the per-backend loops.
//!
//! Two catch-up disciplines exist in the wild and both are preserved here:
//!
//! * **Nominal** — the simulator's semantics: the next firing stays on the
//!   nominal grid (`next += period`), scheduled at `max(nominal, now)`, and
//!   the cycle ends past a hard horizon. A saturated server replays missed
//!   cycles back-to-back, which is exactly how compute saturation shows up
//!   as response-time collapse in the virtual testbed.
//! * **Clamp** — the wall-clock semantics: after firing, the next deadline
//!   is `now + period`. A real server that was descheduled (laptop lid,
//!   debugger, noisy neighbour) must *not* fire a burst of make-up ticks
//!   when it wakes; it resumes the cadence from the present.

use seve_net::time::{SimDuration, SimTime};

/// Anything with a next firing deadline; the driver loops compute their
/// sleep from the earliest deadline across a node's timers.
pub trait Timer {
    /// When this timer next fires, or `None` when its cycle is over.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Is the timer due at `now`?
    fn due(&self, now: SimTime) -> bool {
        self.next_deadline().is_some_and(|t| now >= t)
    }
}

/// How a periodic timer reschedules after firing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CatchUp {
    /// Stay on the nominal grid; end past `hard_end` (simulator semantics).
    Nominal {
        /// No firing is scheduled past this instant.
        hard_end: SimTime,
    },
    /// Resume from the present: next = now + period (wall-clock semantics).
    Clamp,
}

/// The server tick/push cycle timer.
#[derive(Clone, Debug)]
pub struct PeriodicTimer {
    period: SimDuration,
    /// Under `Nominal`, the nominal grid point of the *last scheduled*
    /// firing; under `Clamp`, the actual next deadline.
    next: SimTime,
    policy: CatchUp,
    live: bool,
}

impl PeriodicTimer {
    /// A nominal-grid timer whose first firing is at `first` and whose last
    /// is the final grid point `<= hard_end`.
    pub fn nominal(first: SimTime, period: SimDuration, hard_end: SimTime) -> Self {
        Self {
            period,
            next: first,
            policy: CatchUp::Nominal { hard_end },
            live: first <= hard_end,
        }
    }

    /// A clamped timer first firing one period from `now`.
    pub fn clamped(now: SimTime, period: SimDuration) -> Self {
        Self {
            period,
            next: now + period,
            policy: CatchUp::Clamp,
            live: true,
        }
    }

    /// The firing period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Record a firing at `now` and compute the next deadline. Returns the
    /// instant the next firing should be scheduled at (for event-queue
    /// backends), or `None` when the cycle is over.
    pub fn advance(&mut self, now: SimTime) -> Option<SimTime> {
        match self.policy {
            CatchUp::Nominal { hard_end } => {
                self.next += self.period;
                if self.next <= hard_end {
                    Some(self.next.max(now))
                } else {
                    self.live = false;
                    None
                }
            }
            CatchUp::Clamp => {
                // A stalled node resumes the cadence from the present
                // instead of replaying every missed cycle.
                self.next = now + self.period;
                Some(self.next)
            }
        }
    }
}

impl Timer for PeriodicTimer {
    fn next_deadline(&self) -> Option<SimTime> {
        self.live.then_some(self.next)
    }
}

/// The client move-period timer: a fixed quota of moves, one per period,
/// staying on the nominal grid (a stalled client catches up its quota; the
/// total submission count is part of the workload's definition).
#[derive(Clone, Debug)]
pub struct MoveTimer {
    period: SimDuration,
    next: SimTime,
    remaining: u32,
    total: u32,
}

impl MoveTimer {
    /// A timer firing `moves` times, first at `first`, then every `period`.
    pub fn new(first: SimTime, period: SimDuration, moves: u32) -> Self {
        Self {
            period,
            next: first,
            remaining: moves,
            total: moves,
        }
    }

    /// Moves not yet fired.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Moves already fired.
    pub fn fired(&self) -> u32 {
        self.total - self.remaining
    }

    /// Consume one firing at `now`; returns the instant of the next one,
    /// if the quota is not exhausted.
    pub fn advance(&mut self, now: SimTime) -> Option<SimTime> {
        debug_assert!(self.remaining > 0, "advanced an exhausted move timer");
        self.remaining -= 1;
        if self.remaining > 0 {
            self.next += self.period;
            Some(self.next.max(now))
        } else {
            None
        }
    }
}

impl Timer for MoveTimer {
    fn next_deadline(&self) -> Option<SimTime> {
        (self.remaining > 0).then_some(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_stays_on_grid_and_ends() {
        let mut t = PeriodicTimer::nominal(
            SimTime::from_ms(50),
            SimDuration::from_ms(50),
            SimTime::from_ms(120),
        );
        assert_eq!(t.next_deadline(), Some(SimTime::from_ms(50)));
        assert!(t.due(SimTime::from_ms(50)));
        // Fire late at 130ms: next nominal grid point is 100ms, scheduled
        // at max(nominal, now) = 130ms — the simulator's catch-up burst.
        assert_eq!(
            t.advance(SimTime::from_ms(130)),
            Some(SimTime::from_ms(130))
        );
        // Next grid point 150 > hard_end 120: cycle over.
        assert_eq!(t.advance(SimTime::from_ms(130)), None);
        assert_eq!(t.next_deadline(), None);
        assert!(!t.due(SimTime::from_ms(500)));
    }

    #[test]
    fn clamp_resumes_from_the_present() {
        let mut t = PeriodicTimer::clamped(SimTime::ZERO, SimDuration::from_ms(10));
        assert_eq!(t.next_deadline(), Some(SimTime::from_ms(10)));
        // Stall to 95ms: a nominal timer would owe 9 firings; clamp fires
        // once and resumes at now + period.
        assert_eq!(t.advance(SimTime::from_ms(95)), Some(SimTime::from_ms(105)));
        assert!(!t.due(SimTime::from_ms(104)));
        assert!(t.due(SimTime::from_ms(105)));
    }

    #[test]
    fn move_timer_quota_and_grid() {
        let mut t = MoveTimer::new(SimTime::from_ms(7), SimDuration::from_ms(300), 3);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.next_deadline(), Some(SimTime::from_ms(7)));
        assert_eq!(t.advance(SimTime::from_ms(7)), Some(SimTime::from_ms(307)));
        // Fired late: nominal grid 607, but never scheduled in the past.
        assert_eq!(
            t.advance(SimTime::from_ms(700)),
            Some(SimTime::from_ms(700))
        );
        assert_eq!(t.fired(), 2);
        assert_eq!(t.advance(SimTime::from_ms(700)), None);
        assert_eq!(t.remaining(), 0);
        assert_eq!(t.next_deadline(), None);
    }
}

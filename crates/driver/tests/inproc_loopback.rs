//! End-to-end SEVE session on the in-process backend: the same session
//! shape as the TCP loopback test (`crates/rt/tests/loopback.rs`) — one
//! server thread, four client threads, the Manhattan People workload, the
//! Theorem 1 oracle — but over channels instead of sockets, exercising the
//! shared `NodeDriver` loops with real concurrency and wall-clock timers.

use seve_core::config::{ProtocolConfig, ServerMode};
use seve_core::server::SeveSuite;
use seve_driver::{run_inproc_session, SessionConfig};
use seve_world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use seve_world::GameWorld;
use std::sync::Arc;
use std::time::Duration;

fn world(clients: usize) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 200.0,
        height: 200.0,
        walls: 100,
        clients,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        seed: 77,
        ..ManhattanConfig::default()
    }))
}

fn fast_cfg(mode: ServerMode) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::with_mode(mode);
    // In-process hops are sub-microsecond; scale the cycles down so the
    // session finishes quickly while the protocol structure is identical.
    cfg.rtt = seve_net::time::SimDuration::from_ms(20);
    cfg.tick = seve_net::time::SimDuration::from_ms(5);
    cfg
}

fn run_session(mode: ServerMode) {
    const N: usize = 4;
    const MOVES: u32 = 12;
    let w = world(N);
    let suite = SeveSuite::new(fast_cfg(mode));
    let session = SessionConfig::fast(MOVES, Duration::from_millis(25), Duration::from_millis(5));

    let mut report = run_inproc_session(Arc::clone(&w), &suite, &session, |_| {
        Box::new(ManhattanWorkload::new(&w))
    });

    for c in &report.clients {
        assert!(!c.crashed, "no faults were injected");
        assert_eq!(c.metrics.replay_divergences, 0);
    }
    let (records, violations) = report.cross_check();
    assert!(records > 0, "clients must evaluate actions");
    assert_eq!(
        violations, 0,
        "Theorem 1 must hold over in-process channels"
    );
    let responses = report.responses();
    assert!(
        responses >= N * (MOVES as usize) * 9 / 10,
        "most moves must get stable responses, got {responses}"
    );
    assert!(report.server.metrics.installed > 0, "completions installed");
    assert!(report.server.bytes_out > 0);
    // The stage profile — once simulator-only observability — is populated
    // by the driven backend too.
    assert!(report.server.stage().ingress.events > 0);
}

#[test]
fn incomplete_world_inproc_is_consistent() {
    run_session(ServerMode::Incomplete);
}

#[test]
fn info_bound_inproc_is_consistent() {
    run_session(ServerMode::InfoBound);
}

/// The byte accounting on this backend uses the same `WireSize` model as
/// the simulator, so a session moves a plausible amount of traffic both
/// ways even though nothing is serialized.
#[test]
fn inproc_session_accounts_traffic_both_ways() {
    const N: usize = 3;
    let w = world(N);
    let suite = SeveSuite::new(fast_cfg(ServerMode::Incomplete));
    let session = SessionConfig::fast(8, Duration::from_millis(20), Duration::from_millis(5));
    let report = run_inproc_session(Arc::clone(&w), &suite, &session, |_| {
        Box::new(ManhattanWorkload::new(&w))
    });
    assert!(report.server.bytes_out > 0, "server wrote pushes");
    for c in &report.clients {
        assert!(c.bytes_out > 0, "every client wrote submissions");
    }
    assert_eq!(report.submitted(), (N as u64) * 8);
    let _ = w.num_clients();
}

//! Standalone SEVE client.
//!
//! ```text
//! seve-client --connect host:4000 --id 0 [--moves N] [--period MS]
//!             [--clients N --walls N --seed N --mode ... --rtt MS]
//! ```
//!
//! Joins a session hosted by `seve-server`, plays the Manhattan People
//! workload, and prints its response-time summary. World parameters must
//! match the server's.

use seve_driver::report::render_replay_work;
use seve_rt::cli::{build_protocol, build_world, parse_common};
use seve_rt::run_client;
use seve_world::ids::ClientId;
use seve_world::worlds::manhattan::ManhattanWorkload;
use std::time::Duration;

fn main() {
    let mut connect = "127.0.0.1:4000".to_string();
    let mut id: u16 = 0;
    let mut moves: u32 = 50;
    let mut period_ms: u64 = 100;
    let mut raw: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--connect" => connect = grab("--connect"),
            "--id" => id = grab("--id").parse().expect("--id"),
            "--moves" => moves = grab("--moves").parse().expect("--moves"),
            "--period" => period_ms = grab("--period").parse().expect("--period"),
            other => raw.push(other.to_string()),
        }
    }
    let opts = parse_common(raw.into_iter()).unwrap_or_else(|e| {
        eprintln!("argument error: {e}");
        std::process::exit(2);
    });
    let world = build_world(&opts);
    let cfg = build_protocol(&opts);
    let addr = connect.parse().unwrap_or_else(|e| {
        eprintln!("bad address {connect}: {e}");
        std::process::exit(2);
    });

    println!("seve-client {id}: joining {connect}, {moves} moves every {period_ms} ms");
    let mut wl = ManhattanWorkload::new(&world);
    match run_client(
        world,
        &cfg,
        addr,
        ClientId(id),
        &mut wl,
        moves,
        Duration::from_millis(period_ms),
    ) {
        Ok(report) => {
            println!("done: responses {}", report.metrics.response_ms);
            println!(
                "  submitted {} dropped {} reconciliations {}",
                report.metrics.submitted, report.metrics.dropped, report.metrics.reconciliations
            );
            println!("  stable digest {:x}", report.stable_digest);
            let w = report.replay_work();
            eprint!(
                "{}",
                render_replay_work(
                    &format!("client {id}"),
                    w.rebuilds,
                    w.entries_replayed,
                    w.checkpoint_hits,
                    w.commute_hits,
                )
            );
        }
        Err(e) => {
            eprintln!("client failed: {e}");
            std::process::exit(1);
        }
    }
}

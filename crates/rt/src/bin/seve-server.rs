//! Standalone SEVE server.
//!
//! ```text
//! seve-server --listen 0.0.0.0:4000 --clients 8 [--walls N] [--seed N]
//!             [--mode basic|incomplete|first-bound|info-bound] [--rtt MS]
//!             [--analyze-threads N]
//! ```
//!
//! Hosts one session: accepts exactly `--clients` connections, serializes
//! and routes their actions until every client says goodbye, then prints
//! the server-side report. World parameters must match the clients'.

use seve_core::engine::ProtocolSuite;
use seve_core::pipeline::PipelineServer;
use seve_core::server::SeveSuite;
use seve_driver::report::render_stage_profile;
use seve_rt::cli::{build_protocol, build_world, parse_common};
use seve_rt::run_server;
use seve_world::worlds::manhattan::ManhattanWorld;
use std::net::TcpListener;
use std::time::Duration;

fn main() {
    let mut listen = "127.0.0.1:4000".to_string();
    let mut raw: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--listen" {
            listen = it.next().unwrap_or_else(|| {
                eprintln!("--listen needs an address");
                std::process::exit(2);
            });
        } else {
            raw.push(a);
        }
    }
    let opts = parse_common(raw.into_iter()).unwrap_or_else(|e| {
        eprintln!("argument error: {e}");
        std::process::exit(2);
    });
    let world = build_world(&opts);
    let cfg = build_protocol(&opts);
    let tick = Duration::from_millis(cfg.tick.as_micros() / 1000);
    let push = Duration::from_millis(cfg.push_period().as_micros().max(1000) / 1000);

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    println!(
        "seve-server: {} mode on {listen}, waiting for {} clients (world seed {}, {} walls)",
        cfg.mode.name(),
        opts.clients,
        opts.seed,
        opts.walls
    );

    let mode_name = cfg.mode.name();
    let suite = SeveSuite::new(cfg);
    let digest = {
        use seve_world::GameWorld;
        world.initial_state().digest()
    };
    let (server, _clients): (PipelineServer<ManhattanWorld>, _) = suite.build(world);
    match run_server(server, listener, opts.clients, tick, push, digest) {
        Ok(report) => {
            println!("session complete:");
            println!("  submissions : {}", report.metrics.submissions);
            println!("  installed   : {}", report.metrics.installed);
            println!("  dropped     : {}", report.metrics.drops);
            println!("  bytes out   : {}", report.bytes_out);
            println!("  zeta_s      : {:?}", report.committed_digest);
            // Wall-clock stage timings vary run to run; stderr keeps the
            // stdout report stable.
            eprint!(
                "{}",
                render_stage_profile(
                    &format!("{mode_name} @ {} clients", opts.clients),
                    report.stage()
                )
            );
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            std::process::exit(1);
        }
    }
}

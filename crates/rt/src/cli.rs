//! Shared command-line plumbing for the standalone server and client
//! binaries. Both sides must construct the *identical* world (same seed and
//! parameters), so the world flags are parsed by one function.

use seve_core::config::{ProtocolConfig, ServerMode};
use seve_net::time::SimDuration;
use seve_world::worlds::manhattan::{ManhattanConfig, ManhattanWorld, SpawnPattern};
use std::sync::Arc;

/// Options shared by `seve-server` and `seve-client`.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Number of participating clients.
    pub clients: usize,
    /// Wall count of the Manhattan world.
    pub walls: usize,
    /// World seed (must match between server and clients).
    pub seed: u64,
    /// Protocol mode.
    pub mode: ServerMode,
    /// Assumed round-trip time, milliseconds (drives ω·RTT cycles).
    pub rtt_ms: u64,
    /// Analyze-stage worker threads (`None` = env/auto, `1` = sequential).
    pub analyze_threads: Option<usize>,
    /// Executor pool width (`None` = `SEVE_EXEC_THREADS`/auto, `1` = a
    /// fully inline pool with no worker threads).
    pub exec_threads: Option<usize>,
    /// Remaining positional arguments.
    pub rest: Vec<String>,
}

impl Default for CommonOpts {
    fn default() -> Self {
        Self {
            clients: 4,
            walls: 500,
            seed: 7,
            mode: ServerMode::InfoBound,
            rtt_ms: 40,
            analyze_threads: None,
            exec_threads: None,
            rest: Vec::new(),
        }
    }
}

/// Parse `--clients N --walls N --seed N --mode basic|incomplete|
/// first-bound|info-bound --rtt MS --analyze-threads N --exec-threads N`
/// plus positionals from `args`.
pub fn parse_common(args: impl Iterator<Item = String>) -> Result<CommonOpts, String> {
    let mut opts = CommonOpts::default();
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--clients" => {
                opts.clients = grab("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--walls" => {
                opts.walls = grab("--walls")?
                    .parse()
                    .map_err(|e| format!("--walls: {e}"))?
            }
            "--seed" => {
                opts.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rtt" => opts.rtt_ms = grab("--rtt")?.parse().map_err(|e| format!("--rtt: {e}"))?,
            "--analyze-threads" => {
                opts.analyze_threads = Some(
                    grab("--analyze-threads")?
                        .parse()
                        .map_err(|e| format!("--analyze-threads: {e}"))?,
                )
            }
            "--exec-threads" => {
                opts.exec_threads = Some(
                    grab("--exec-threads")?
                        .parse()
                        .map_err(|e| format!("--exec-threads: {e}"))?,
                )
            }
            "--mode" => {
                opts.mode = match grab("--mode")?.as_str() {
                    "basic" => ServerMode::Basic,
                    "incomplete" => ServerMode::Incomplete,
                    "first-bound" => ServerMode::FirstBound,
                    "info-bound" => ServerMode::InfoBound,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            other => opts.rest.push(other.to_string()),
        }
    }
    Ok(opts)
}

/// Build the world both sides agree on.
pub fn build_world(opts: &CommonOpts) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: opts.clients,
        walls: opts.walls,
        width: 400.0,
        height: 400.0,
        spawn: SpawnPattern::Clustered {
            cluster_size: 6,
            cluster_radius: 14.0,
        },
        seed: opts.seed,
        ..ManhattanConfig::default()
    }))
}

/// Build the protocol configuration both sides agree on.
pub fn build_protocol(opts: &CommonOpts) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::with_mode(opts.mode);
    cfg.rtt = SimDuration::from_ms(opts.rtt_ms);
    cfg.tick = SimDuration::from_ms((opts.rtt_ms / 4).max(2));
    cfg.analyze_threads = opts.analyze_threads;
    cfg.exec_threads = opts.exec_threads;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CommonOpts, String> {
        parse_common(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.clients, 4);
        let o = parse(&[
            "--clients",
            "12",
            "--mode",
            "incomplete",
            "--rtt",
            "100",
            "--analyze-threads",
            "4",
            "--exec-threads",
            "2",
            "extra",
        ])
        .unwrap();
        assert_eq!(o.clients, 12);
        assert_eq!(o.mode, ServerMode::Incomplete);
        assert_eq!(o.rtt_ms, 100);
        assert_eq!(o.analyze_threads, Some(4));
        assert_eq!(o.exec_threads, Some(2));
        assert_eq!(o.rest, vec!["extra".to_string()]);
        let cfg = build_protocol(&o);
        assert_eq!(cfg.analyze_threads, Some(4));
        assert_eq!(cfg.exec_threads, Some(2));
    }

    #[test]
    fn bad_values_error() {
        assert!(parse(&["--clients"]).is_err());
        assert!(parse(&["--clients", "x"]).is_err());
        assert!(parse(&["--mode", "zoned"]).is_err());
        assert!(parse(&["--analyze-threads", "many"]).is_err());
        assert!(parse(&["--exec-threads", "many"]).is_err());
    }

    #[test]
    fn worlds_built_from_equal_opts_are_identical() {
        use seve_world::GameWorld;
        let o = parse(&["--seed", "99", "--clients", "6"]).unwrap();
        let a = build_world(&o);
        let b = build_world(&o);
        assert_eq!(a.initial_state().digest(), b.initial_state().digest());
    }
}

//! # seve-rt — the real-network runtime
//!
//! The paper evaluates SEVE "using both simulation and real experiments"
//! (Section I). This crate is the real half: the same protocol engines from
//! `seve-core` — byte-for-byte the same client and server state machines —
//! driven over actual TCP sockets with a binary wire format, OS threads,
//! and wall-clock tick/push timers.
//!
//! * [`wire`] — a compact, non-self-describing binary serde format
//!   (fixed-width little-endian integers, length-prefixed sequences). No
//!   wire-format crate is among the project's allowed dependencies, so the
//!   format is implemented here; anything with a serde derive encodes.
//! * [`frame`] — length-prefixed framing over `TcpStream`.
//! * [`server`] — a threaded server hosting any [`seve_core::ServerNode`].
//! * [`client`] — a threaded client driving a [`seve_core::SeveClient`]
//!   with a workload at a fixed move cadence.
//!
//! The engine loops themselves live in the driver layer (`seve-driver`):
//! this crate contributes [`server::TcpServerTransport`] and
//! [`client::TcpClientTransport`], the framed-socket implementations of
//! the driver's transport traits, and thin entry points that wire them to
//! [`seve_driver::NodeDriver`]. Reports are the driver's shared
//! [`ServerReport`]/[`ClientReport`] types, so the pipeline stage profile
//! and replay-work counters are available here exactly as in the
//! simulator.
//!
//! The loopback integration test runs a full Manhattan People session over
//! real sockets and checks the same Theorem 1 oracle the simulator uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::{run_client, run_client_with, ClientReport, TcpClientTransport};
pub use server::{fan_out, run_server, run_server_with, ServerReport, TcpServerTransport};

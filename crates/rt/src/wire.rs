//! A compact binary serde format.
//!
//! Non-self-describing (the message schema is fixed by the protocol
//! version), fixed-width little-endian scalars, `u32` length prefixes for
//! sequences/strings/maps, `u32` variant indices for enums, one tag byte
//! for `Option`. Everything deriving `serde::{Serialize, Deserialize}`
//! round-trips; `deserialize_any` is unsupported by design.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::{ser, Serialize};
use std::fmt;

/// Encoding / decoding errors.
///
/// The hot decoder paths (bounds checks, tag validation) build dedicated
/// payload-carrying variants so failing to decode never allocates; the
/// message is only formatted when the error actually escapes through
/// `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a value could be decoded.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that were actually left.
        had: usize,
    },
    /// Bytes remained after the value was fully decoded.
    Trailing(usize),
    /// A bool byte other than 0 or 1.
    InvalidBool(u8),
    /// An `Option` tag byte other than 0 or 1.
    InvalidOptionTag(u8),
    /// A char code outside the Unicode scalar-value range.
    InvalidChar(u32),
    /// A fixed diagnostic for misuse of the format (unsupported
    /// operations, oversize lengths, framing misuse).
    Unsupported(&'static str),
    /// A serde-originated custom message (including UTF-8 failures).
    Custom(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, had } => {
                write!(f, "wire: needed {needed} bytes, had {had}")
            }
            WireError::Trailing(n) => write!(f, "wire: {n} trailing bytes after value"),
            WireError::InvalidBool(b) => write!(f, "wire: invalid bool byte {b}"),
            WireError::InvalidOptionTag(b) => write!(f, "wire: invalid option tag {b}"),
            WireError::InvalidChar(code) => write!(f, "wire: invalid char code {code}"),
            WireError::Unsupported(msg) => write!(f, "wire: {msg}"),
            WireError::Custom(msg) => write!(f, "wire: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Custom(msg.to_string())
    }
}

/// Serialize `value` into bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(128);
    to_bytes_into(value, &mut out)?;
    Ok(out)
}

/// Serialize `value` by appending to `out`, reusing its capacity.
///
/// Byte-for-byte identical to [`to_bytes`] (which delegates here); with a
/// recycled buffer from a [`BufferPool`], steady-state encoding performs
/// zero heap allocations.
pub fn to_bytes_into<T: Serialize>(value: &T, out: &mut Vec<u8>) -> Result<(), WireError> {
    value.serialize(&mut Encoder { out })
}

/// Deserialize a `T` from `bytes`, requiring full consumption.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, WireError> {
    let mut dec = Decoder { input: bytes };
    let v = T::deserialize(&mut dec)?;
    if !dec.input.is_empty() {
        return Err(WireError::Trailing(dec.input.len()));
    }
    Ok(v)
}

/// A free list of encode buffers so steady-state egress re-uses frames
/// instead of allocating.
///
/// `take` prefers a recycled buffer (a *hit*) and only allocates on a
/// *miss*; `put` clears the buffer but keeps its capacity. The hit/miss
/// split feeds the `pool_hits` stage counter, which is how the smoke check
/// asserts zero steady-state allocations.
///
/// The free list is bounded: at most [`MAX_POOLED`] buffers are retained,
/// and a buffer grown past [`MAX_RETAINED`] bytes is freed instead of
/// pooled, so a one-off burst of large or numerous frames can't pin that
/// memory for the transport's lifetime.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
    taken: u64,
    returned: u64,
}

/// Most buffers [`BufferPool::put`] keeps on the free list.
const MAX_POOLED: usize = 1024;
/// Largest per-buffer capacity [`BufferPool::put`] retains.
const MAX_RETAINED: usize = 1 << 20;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty (cleared) buffer, recycled when one is available.
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(buf) => {
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::with_capacity(128)
            }
        }
    }

    /// Return a buffer to the pool, keeping its capacity for reuse.
    /// Oversized buffers and overflow past the free-list cap are dropped
    /// (but still count as returned — the transport no longer holds them).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        self.returned += 1;
        if self.free.len() >= MAX_POOLED || buf.capacity() > MAX_RETAINED {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Takes that were served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Takes that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Buffers taken and not yet returned. Zero at rest — anything else
    /// means an egress lane is pinning pooled frames (the leak the session
    /// reaper exists to prevent).
    pub fn outstanding(&self) -> u64 {
        self.taken - self.returned
    }
}

struct Encoder<'a> {
    out: &'a mut Vec<u8>,
}

impl Encoder<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len = u32::try_from(len).map_err(|_| WireError::Unsupported("length > u32::MAX"))?;
        self.put(&len.to_le_bytes());
        Ok(())
    }
}

impl ser::Serializer for &mut Encoder<'_> {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.put(&[u8::from(v)]);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.put(&[v]);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.put(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.put(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.put(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.put(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), WireError> {
        self.put(&[0]);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), WireError> {
        self.put(&[1]);
        v.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<(), WireError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(idx)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        v: &T,
    ) -> Result<(), WireError> {
        v.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        v: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(idx)?;
        v.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("sequences must know their length"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_tuple(self, _: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _: &'static str, _: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(idx)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, WireError> {
        let len = len.ok_or(WireError::Unsupported("maps must know their length"))?;
        self.put_len(len)?;
        Ok(self)
    }
    fn serialize_struct(self, _: &'static str, _: usize) -> Result<Self, WireError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        idx: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self, WireError> {
        self.serialize_u32(idx)?;
        Ok(self)
    }
}

macro_rules! encoder_compound {
    ($trait:path, $method:ident $(, $key:ident)?) => {
        impl $trait for &mut Encoder<'_> {
            type Ok = ();
            type Error = WireError;
            $(fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
                key.serialize(&mut **self)
            })?
            fn $method<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), WireError> {
                v.serialize(&mut **self)
            }
            fn end(self) -> Result<(), WireError> {
                Ok(())
            }
        }
    };
}

encoder_compound!(ser::SerializeSeq, serialize_element);
encoder_compound!(ser::SerializeTuple, serialize_element);
encoder_compound!(ser::SerializeTupleStruct, serialize_field);
encoder_compound!(ser::SerializeTupleVariant, serialize_field);
encoder_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut Encoder<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _: &'static str,
        v: &T,
    ) -> Result<(), WireError> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder<'_> {
    type Ok = ();
    type Error = WireError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _: &'static str,
        v: &T,
    ) -> Result<(), WireError> {
        v.serialize(&mut **self)
    }
    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::Truncated {
                needed: n,
                had: self.input.len(),
            });
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }

    fn take_len(&mut self) -> Result<usize, WireError> {
        Ok(u32::from_le_bytes(self.take_array()?) as usize)
    }
}

macro_rules! decode_scalar {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            visitor.$visit(<$ty>::from_le_bytes(self.take_array()?))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    decode_scalar!(deserialize_i8, visit_i8, i8);
    decode_scalar!(deserialize_i16, visit_i16, i16);
    decode_scalar!(deserialize_i32, visit_i32, i32);
    decode_scalar!(deserialize_i64, visit_i64, i64);
    decode_scalar!(deserialize_u16, visit_u16, u16);
    decode_scalar!(deserialize_u32, visit_u32, u32);
    decode_scalar!(deserialize_u64, visit_u64, u64);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f32(f32::from_bits(u32::from_le_bytes(self.take_array()?)))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_f64(f64::from_bits(u64::from_le_bytes(self.take_array()?)))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let code = u32::from_le_bytes(self.take_array()?);
        visitor.visit_char(char::from_u32(code).ok_or(WireError::InvalidChar(code))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_str(std::str::from_utf8(bytes).map_err(|e| WireError::Custom(e.to_string()))?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError::InvalidOptionTag(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _: &'static str,
        _: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _: V) -> Result<V::Value, WireError> {
        Err(WireError::Unsupported(
            "cannot skip values in a non-self-describing format",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Decoder<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = WireError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Decoder<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), WireError> {
        let idx = u32::from_le_bytes(self.de.take_array()?);
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

/// Round-trip helper used in tests and assertions.
pub fn roundtrip<T: Serialize + DeserializeOwned>(value: &T) -> Result<T, WireError> {
    from_bytes(&to_bytes(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use seve_world::geometry::Vec2;
    use seve_world::ids::{ActionId, AttrId, ClientId, ObjectId};
    use seve_world::objset::ObjectSet;
    use seve_world::state::{Snapshot, WriteLog};
    use seve_world::value::Value;
    use seve_world::WorldObject;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Mixed {
        a: u8,
        b: i64,
        c: f64,
        d: bool,
        e: Option<u32>,
        f: Vec<u16>,
        g: String,
        h: (u8, u8),
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, u8),
        Struct { x: f64, y: f64 },
    }

    #[test]
    fn mixed_struct_roundtrip() {
        let v = Mixed {
            a: 7,
            b: -42,
            c: 1.5,
            d: true,
            e: Some(9),
            f: vec![1, 2, 3],
            g: "héllo".into(),
            h: (4, 5),
        };
        assert_eq!(roundtrip(&v).unwrap(), v);
        let none = Mixed {
            e: None,
            ..roundtrip(&v).unwrap()
        };
        assert_eq!(roundtrip(&none).unwrap(), none);
    }

    #[test]
    fn enum_variants_roundtrip() {
        for v in [
            Shape::Unit,
            Shape::Newtype(77),
            Shape::Tuple(1, 2),
            Shape::Struct { x: 0.25, y: -8.0 },
        ] {
            assert_eq!(roundtrip(&v).unwrap(), v);
        }
    }

    #[test]
    fn world_types_roundtrip() {
        let id = ActionId::new(ClientId(3), 99);
        assert_eq!(roundtrip(&id).unwrap(), id);
        let set: ObjectSet = [ObjectId(5), ObjectId(1)].into_iter().collect();
        assert_eq!(roundtrip(&set).unwrap(), set);
        let mut log = WriteLog::new();
        log.push(ObjectId(2), AttrId(0), Value::Vec2(Vec2::new(1.0, -2.0)));
        log.push(ObjectId(2), AttrId(1), Value::Bool(true));
        assert_eq!(roundtrip(&log).unwrap(), log);
        let mut snap = Snapshot::new();
        snap.push(
            ObjectId(9),
            WorldObject::from_attrs([(AttrId(0), Value::I64(-5))]),
        );
        assert_eq!(roundtrip(&snap).unwrap(), snap);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = to_bytes(&12345678u64).unwrap();
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert_eq!(err, WireError::Truncated { needed: 8, had: 4 });
        assert_eq!(err.to_string(), "wire: needed 8 bytes, had 4");
    }

    #[test]
    fn pooled_encoding_matches_to_bytes() {
        let v = Mixed {
            a: 7,
            b: -42,
            c: 1.5,
            d: true,
            e: Some(9),
            f: vec![1, 2, 3],
            g: "héllo".into(),
            h: (4, 5),
        };
        let oracle = to_bytes(&v).unwrap();
        let mut pool = BufferPool::new();
        let mut buf = pool.take();
        to_bytes_into(&v, &mut buf).unwrap();
        assert_eq!(buf, oracle);
        pool.put(buf);
        // A recycled buffer must start empty and produce identical bytes.
        let mut buf = pool.take();
        assert!(buf.is_empty());
        to_bytes_into(&v, &mut buf).unwrap();
        assert_eq!(buf, oracle);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_error() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[7, 0]).is_err());
    }

    #[test]
    fn float_bits_are_exact() {
        let v = f64::from_bits(0x7FF0_0000_0000_0001); // a NaN payload
        let back: f64 = roundtrip(&v).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }
}

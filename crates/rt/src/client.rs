//! The threaded TCP client driver.
//!
//! Drives a [`SeveClient`] engine — the same one the simulator uses — over
//! a real socket. This module owns only the socket plumbing (connect +
//! hello handshake, a reader thread feeding a channel, the framed writer),
//! packaged as a [`TcpClientTransport`]; the move/drain/linger phases are
//! the driver layer's [`NodeDriver::run_client`], shared with the
//! in-process backend.
//!
//! The transport is reconnectable: [`ClientTransport::reconnect`] dials
//! the server again and re-presents the hello (with the session token), so
//! a [`SupervisedClientTransport`] stacked on top can heal a lost link and
//! resume the session mid-run.

use crate::frame::{encode_frame_into, write_msg, FrameError, FrameReader};
use crate::server::{RtDown, RtUp};
use crate::wire::BufferPool;
use crossbeam::channel::{self, Receiver, RecvTimeoutError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use seve_core::client::SeveClient;
use seve_core::config::ProtocolConfig;
use seve_core::msg::{ToClient, ToServer};
use seve_driver::{
    session_token, ClientEvent, ClientTransport, FaultPlan, FaultyClientTransport, NodeDriver,
    SessionDown, SessionParams, SessionUp, SupervisedClientTransport,
};
use seve_world::ids::ClientId;
use seve_world::worlds::Workload;
use seve_world::GameWorld;
use std::io;
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use seve_driver::ClientReport;

/// A client's side of a framed-TCP session: the writer socket plus the
/// channel the reader thread feeds. Implements [`ClientTransport`] so
/// [`NodeDriver::run_client`] can drive any engine over it. `writer` is
/// `None` while the link is down (after a partition or a lost server);
/// [`ClientTransport::reconnect`] dials again and re-seats the session.
pub struct TcpClientTransport<U, D> {
    addr: SocketAddr,
    id: ClientId,
    world_digest: u64,
    token: u64,
    writer: Option<TcpStream>,
    rx: Receiver<RtDown<D>>,
    /// Recycled encode buffer for the submit path: after the first send,
    /// framing a message allocates nothing.
    pool: BufferPool,
    /// Reader threads, one per connection made; stale ones exit when
    /// their socket is shut down.
    readers: Vec<std::thread::JoinHandle<()>>,
    /// Handshake frames are sent outside the driven session; the runner
    /// folds them into the report's wire total afterwards.
    hello_bytes: Arc<AtomicU64>,
    _up: PhantomData<U>,
}

impl<U, D> TcpClientTransport<U, D>
where
    U: Serialize,
    D: DeserializeOwned + Send + 'static,
{
    /// Dial `addr`, present the hello for `id`, and spawn the reader.
    pub fn connect(
        addr: SocketAddr,
        id: ClientId,
        world_digest: u64,
        token: u64,
    ) -> Result<Self, FrameError> {
        // Start from a disconnected channel; `reconnect` installs the
        // live one.
        let (_tx, rx) = channel::unbounded::<RtDown<D>>();
        let mut t = Self {
            addr,
            id,
            world_digest,
            token,
            writer: None,
            rx,
            pool: BufferPool::new(),
            readers: Vec::new(),
            hello_bytes: Arc::new(AtomicU64::new(0)),
            _up: PhantomData,
        };
        t.reconnect()?;
        Ok(t)
    }

    /// Total bytes spent on hello handshakes so far (shared handle; stays
    /// readable after the transport is consumed by a wrapper stack).
    pub fn handshake_bytes(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.hello_bytes)
    }
}

impl<U, D> Drop for TcpClientTransport<U, D> {
    fn drop(&mut self) {
        // Shutting the socket (not just dropping our writer clone) wakes
        // the reader thread, so joining below cannot hang.
        if let Some(s) = self.writer.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl<U, D> ClientTransport<U, D> for TcpClientTransport<U, D>
where
    U: Serialize,
    D: DeserializeOwned + Send + 'static,
{
    type Error = FrameError;

    fn recv(&mut self, timeout: Duration) -> Result<ClientEvent<D>, FrameError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(RtDown::Msg(m)) => ClientEvent::Msg(m),
            Ok(RtDown::Stop) => ClientEvent::Stop,
            Err(RecvTimeoutError::Timeout) => ClientEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => ClientEvent::Closed,
        })
    }

    fn send(&mut self, msg: U) -> Result<u64, FrameError> {
        use std::io::Write;
        let Some(writer) = self.writer.as_mut() else {
            return Err(FrameError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "link down",
            )));
        };
        let mut frame = self.pool.take();
        let r = encode_frame_into(&RtUp::Msg(msg), &mut frame);
        let len = frame.len() as u64;
        let r = r.and_then(|()| {
            writer.write_all(&frame)?;
            writer.flush()?;
            Ok(())
        });
        self.pool.put(frame);
        r.map(|()| len)
    }

    fn finish(&mut self) -> Result<u64, FrameError> {
        match self.writer.as_mut() {
            Some(w) => Ok(write_msg(w, &RtUp::<U>::Bye)? as u64),
            None => Ok(0),
        }
    }

    fn reconnect(&mut self) -> Result<bool, FrameError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        let hello = write_msg(
            &mut writer,
            &RtUp::<U>::Hello {
                client: self.id.0,
                world_digest: self.world_digest,
                token: self.token,
            },
        )? as u64;
        self.hello_bytes.fetch_add(hello, Ordering::Relaxed);

        // Reader thread: frames → channel.
        let (tx, rx) = channel::unbounded::<RtDown<D>>();
        let mut reader = FrameReader::new(stream);
        self.readers.push(std::thread::spawn(move || {
            while let Ok(m) = reader.read_msg::<RtDown<D>>() {
                let stop = matches!(m, RtDown::Stop);
                if tx.send(m).is_err() || stop {
                    break;
                }
            }
        }));

        // Retire any previous socket only once the new one is seated; its
        // reader exits on the shutdown.
        if let Some(old) = self.writer.replace(writer) {
            let _ = old.shutdown(Shutdown::Both);
        }
        self.rx = rx;
        Ok(true)
    }

    fn partition(&mut self, _d: Duration) -> Result<(), FrameError> {
        // A real outage: kill the socket. The server's reader observes the
        // loss; the supervised wrapper above models the dark window and
        // schedules the heal.
        if let Some(s) = self.writer.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        Ok(())
    }
}

/// Connect to `addr` as `id`, submit `moves` workload actions at `period`,
/// drain, and return the observations. Runs a supervised session with
/// [`SessionParams::default`] and no injected faults; see
/// [`run_client_with`].
pub fn run_client<W>(
    world: Arc<W>,
    cfg: &ProtocolConfig,
    addr: SocketAddr,
    id: ClientId,
    workload: &mut dyn Workload<W>,
    moves: u32,
    period: Duration,
) -> Result<ClientReport, FrameError>
where
    W: GameWorld,
    W::Action: Serialize + DeserializeOwned,
{
    run_client_with(
        world,
        cfg,
        addr,
        id,
        workload,
        moves,
        period,
        &FaultPlan::none(),
        SessionParams::default(),
    )
}

/// [`run_client`] with explicit fault injection and [`SessionParams`].
///
/// The transport stack is `Supervised{Faulty{Tcp}}` when
/// `session.supervised` (sequence-numbered envelopes, resequencing, acks,
/// reconnect-with-backoff after a partition) and `Faulty{Tcp}` otherwise
/// (bare protocol frames, byte-identical to the pre-session host). The
/// client's entries in `faults` — crash schedule, partition window, lane
/// policies — are applied here.
#[allow(clippy::too_many_arguments)]
pub fn run_client_with<W>(
    world: Arc<W>,
    cfg: &ProtocolConfig,
    addr: SocketAddr,
    id: ClientId,
    workload: &mut dyn Workload<W>,
    moves: u32,
    period: Duration,
    faults: &FaultPlan,
    session: SessionParams,
) -> Result<ClientReport, FrameError>
where
    W: GameWorld,
    W::Action: Serialize + DeserializeOwned,
{
    let world_digest = world.initial_state().digest();
    let engine: SeveClient<W> = SeveClient::new(id, world, cfg);
    let mut driver = NodeDriver::client(moves, period);
    driver.crash_after_moves = faults.crash_for(id);
    driver.partition_after_moves = faults
        .partition_for(id)
        .map(|p| (p.after_submissions, p.duration));

    if session.supervised {
        type Up<W> = SessionUp<ToServer<<W as GameWorld>::Action>>;
        type Down<W> = SessionDown<ToClient<<W as GameWorld>::Action>>;
        let token = session_token(session.seed, id);
        let inner: TcpClientTransport<Up<W>, Down<W>> =
            TcpClientTransport::connect(addr, id, world_digest, token)?;
        let hello = inner.handshake_bytes();
        let faulty = FaultyClientTransport::new(inner, faults, id.index());
        let mut transport = SupervisedClientTransport::new(faulty, id, session);
        let mut report = driver.run_client(engine, workload, &mut transport)?;
        report.bytes_out += hello.load(Ordering::Relaxed);
        Ok(report)
    } else {
        let inner: TcpClientTransport<ToServer<W::Action>, ToClient<W::Action>> =
            TcpClientTransport::connect(addr, id, world_digest, 0)?;
        let hello = inner.handshake_bytes();
        let mut transport = FaultyClientTransport::new(inner, faults, id.index());
        let mut report = driver.run_client(engine, workload, &mut transport)?;
        report.bytes_out += hello.load(Ordering::Relaxed);
        Ok(report)
    }
}

//! The threaded TCP client driver.
//!
//! Drives a [`SeveClient`] engine — the same one the simulator uses — over
//! a real socket: a reader thread feeds incoming batches into a channel,
//! while the main loop submits one workload action per move period and
//! applies whatever arrives in between.

use crate::frame::{write_msg, FrameError, FrameReader};
use crate::server::{RtDown, RtUp};
use crossbeam::channel::{self, RecvTimeoutError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use seve_core::client::SeveClient;
use seve_core::config::ProtocolConfig;
use seve_core::engine::ClientNode;
use seve_core::metrics::ClientMetrics;
use seve_core::msg::{ToClient, ToServer};
use seve_net::time::SimTime;
use seve_world::ids::ClientId;
use seve_world::worlds::Workload;
use seve_world::GameWorld;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one client observed over a session.
#[derive(Debug)]
pub struct ClientReport {
    /// Engine metrics, including the evaluation records for the
    /// consistency oracle.
    pub metrics: ClientMetrics,
    /// Digest of the final stable state ζ_CS.
    pub stable_digest: u64,
    /// Bytes written to the server (frames, including headers).
    pub bytes_out: u64,
}

/// Connect to `addr` as `id`, submit `moves` workload actions at `period`,
/// drain, and return the observations.
pub fn run_client<W>(
    world: Arc<W>,
    cfg: &ProtocolConfig,
    addr: SocketAddr,
    id: ClientId,
    workload: &mut dyn Workload<W>,
    moves: u32,
    period: Duration,
) -> Result<ClientReport, FrameError>
where
    W: GameWorld,
    W::Action: Serialize + DeserializeOwned,
{
    let world_digest = world.initial_state().digest();
    let mut engine: SeveClient<W> = SeveClient::new(id, world, cfg);
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut bytes_out = write_msg(
        &mut writer,
        &RtUp::<ToServer<W::Action>>::Hello {
            client: id.0,
            world_digest,
        },
    )? as u64;

    // Reader thread: frames → channel.
    let (tx, rx) = channel::unbounded::<RtDown<ToClient<W::Action>>>();
    let mut reader = FrameReader::new(stream);
    let reader_handle = std::thread::spawn(move || {
        while let Ok(m) = reader.read_msg::<RtDown<ToClient<W::Action>>>() {
            let stop = matches!(m, RtDown::Stop);
            if tx.send(m).is_err() || stop {
                break;
            }
        }
    });

    let epoch = Instant::now();
    let now = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);
    let mut out: Vec<ToServer<W::Action>> = Vec::new();
    let mut submitted = 0u32;
    let mut next_move = Instant::now();

    // Phase 1: the workload. The move timer is checked explicitly before
    // blocking on the channel, so a steady stream of inbound batches can
    // never starve submissions.
    while submitted < moves {
        let now_i = Instant::now();
        if now_i >= next_move {
            let seq = engine.next_seq();
            if let Some(action) =
                workload.next_action(id, seq, engine.optimistic(), now(epoch).as_ms())
            {
                out.clear();
                engine.submit(now(epoch), action, &mut out);
                for m in out.drain(..) {
                    bytes_out += write_msg(&mut writer, &RtUp::Msg(m))? as u64;
                }
            }
            submitted += 1;
            next_move += period;
            continue;
        }
        let wait = next_move.saturating_duration_since(now_i);
        match rx.recv_timeout(wait) {
            Ok(RtDown::Msg(msg)) => {
                out.clear();
                engine.deliver(now(epoch), msg, &mut out);
                for m in out.drain(..) {
                    bytes_out += write_msg(&mut writer, &RtUp::Msg(m))? as u64;
                }
            }
            Ok(RtDown::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Phase 2: drain until our pending queue empties (or we give up).
    let drain_deadline = Instant::now() + period * 10 + Duration::from_secs(2);
    while engine.pending_len() > 0 && Instant::now() < drain_deadline {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(RtDown::Msg(msg)) => {
                out.clear();
                engine.deliver(now(epoch), msg, &mut out);
                for m in out.drain(..) {
                    bytes_out += write_msg(&mut writer, &RtUp::Msg(m))? as u64;
                }
            }
            Ok(RtDown::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    bytes_out += write_msg(&mut writer, &RtUp::<ToServer<W::Action>>::Bye)? as u64;

    // Phase 3: keep applying serialized traffic until the server stops us —
    // other clients may still need our completions.
    loop {
        match rx.recv_timeout(Duration::from_secs(10)) {
            Ok(RtDown::Msg(msg)) => {
                out.clear();
                engine.deliver(now(epoch), msg, &mut out);
                for m in out.drain(..) {
                    // The server drops post-Bye messages from its count but
                    // the socket is still open; keep the protocol honest.
                    bytes_out += write_msg(&mut writer, &RtUp::Msg(m))? as u64;
                }
            }
            Ok(RtDown::Stop) => break,
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    let stable_digest = engine.stable().digest();
    let metrics = std::mem::take(engine.metrics_mut());
    drop(writer);
    let _ = reader_handle.join();
    Ok(ClientReport {
        metrics,
        stable_digest,
        bytes_out,
    })
}

//! The threaded TCP client driver.
//!
//! Drives a [`SeveClient`] engine — the same one the simulator uses — over
//! a real socket. This module owns only the socket plumbing (connect +
//! hello handshake, a reader thread feeding a channel, the framed writer),
//! packaged as a [`TcpClientTransport`]; the move/drain/linger phases are
//! the driver layer's [`NodeDriver::run_client`], shared with the
//! in-process backend.

use crate::frame::{encode_frame_into, write_msg, FrameError, FrameReader};
use crate::server::{RtDown, RtUp};
use crate::wire::BufferPool;
use crossbeam::channel::{self, Receiver, RecvTimeoutError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use seve_core::client::SeveClient;
use seve_core::config::ProtocolConfig;
use seve_core::msg::{ToClient, ToServer};
use seve_driver::{ClientEvent, ClientTransport, NodeDriver};
use seve_world::ids::ClientId;
use seve_world::worlds::Workload;
use seve_world::GameWorld;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

pub use seve_driver::ClientReport;

/// A client's side of a framed-TCP session: the writer socket plus the
/// channel the reader thread feeds. Implements [`ClientTransport`] so
/// [`NodeDriver::run_client`] can drive any engine over it.
pub struct TcpClientTransport<U, D> {
    writer: TcpStream,
    rx: Receiver<RtDown<D>>,
    /// Recycled encode buffer for the submit path: after the first send,
    /// framing a message allocates nothing.
    pool: BufferPool,
    _up: PhantomData<U>,
}

impl<U: Serialize, D> ClientTransport<U, D> for TcpClientTransport<U, D> {
    type Error = FrameError;

    fn recv(&mut self, timeout: Duration) -> Result<ClientEvent<D>, FrameError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(RtDown::Msg(m)) => ClientEvent::Msg(m),
            Ok(RtDown::Stop) => ClientEvent::Stop,
            Err(RecvTimeoutError::Timeout) => ClientEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => ClientEvent::Closed,
        })
    }

    fn send(&mut self, msg: U) -> Result<u64, FrameError> {
        use std::io::Write;
        let mut frame = self.pool.take();
        let r = encode_frame_into(&RtUp::Msg(msg), &mut frame);
        let len = frame.len() as u64;
        let r = r.and_then(|()| {
            self.writer.write_all(&frame)?;
            self.writer.flush()?;
            Ok(())
        });
        self.pool.put(frame);
        r.map(|()| len)
    }

    fn finish(&mut self) -> Result<u64, FrameError> {
        Ok(write_msg(&mut self.writer, &RtUp::<U>::Bye)? as u64)
    }
}

/// Connect to `addr` as `id`, submit `moves` workload actions at `period`,
/// drain, and return the observations.
pub fn run_client<W>(
    world: Arc<W>,
    cfg: &ProtocolConfig,
    addr: SocketAddr,
    id: ClientId,
    workload: &mut dyn Workload<W>,
    moves: u32,
    period: Duration,
) -> Result<ClientReport, FrameError>
where
    W: GameWorld,
    W::Action: Serialize + DeserializeOwned,
{
    let world_digest = world.initial_state().digest();
    let engine: SeveClient<W> = SeveClient::new(id, world, cfg);
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let hello_bytes = write_msg(
        &mut writer,
        &RtUp::<ToServer<W::Action>>::Hello {
            client: id.0,
            world_digest,
        },
    )? as u64;

    // Reader thread: frames → channel.
    let (tx, rx) = channel::unbounded::<RtDown<ToClient<W::Action>>>();
    let mut reader = FrameReader::new(stream);
    let reader_handle = std::thread::spawn(move || {
        while let Ok(m) = reader.read_msg::<RtDown<ToClient<W::Action>>>() {
            let stop = matches!(m, RtDown::Stop);
            if tx.send(m).is_err() || stop {
                break;
            }
        }
    });

    let mut transport = TcpClientTransport {
        writer,
        rx,
        pool: BufferPool::new(),
        _up: PhantomData,
    };
    let mut report =
        NodeDriver::client(moves, period).run_client(engine, workload, &mut transport)?;
    // The hello handshake happened before the driven session; fold its
    // frame into the wire total.
    report.bytes_out += hello_bytes;

    drop(transport);
    let _ = reader_handle.join();
    Ok(report)
}

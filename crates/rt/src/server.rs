//! The threaded TCP server host.
//!
//! Hosts any [`ServerNode`] engine — the exact state machines the
//! simulator drives — over real sockets. The socket machinery lives here
//! (accept + hello handshake, one reader thread per client feeding a
//! channel, framed parallel fan-out back to the clients), packaged as a
//! [`TcpServerTransport`]; the engine loop itself — wall-clock tick (τ)
//! and push (ω·RTT) timers interleaved with message dispatch — is the
//! driver layer's [`NodeDriver::run_server`], shared with the in-process
//! backend.

use crate::frame::{encode_frame_into, write_msg, FrameError, FrameReader};
use crate::wire::BufferPool;
use crossbeam::channel::{self, Receiver, RecvTimeoutError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use seve_core::engine::{ServerNode, ShareId, ShareKey};
use seve_driver::{EgressStats, NodeDriver, ServerEvent, ServerTransport};
use seve_world::ids::ClientId;
use seve_world::GameWorld;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{self, IoSlice, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

pub use seve_driver::ServerReport;

/// Client → server transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtUp<M> {
    /// Identify the connecting client.
    Hello {
        /// The client index.
        client: u16,
        /// Digest of the client's initial world state. Replicas built from
        /// different world parameters can never converge; the server
        /// rejects mismatches at the door instead of diverging silently.
        world_digest: u64,
    },
    /// A protocol message.
    Msg(M),
    /// The client has finished its workload and drained.
    Bye,
}

/// Server → client transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtDown<M> {
    /// A protocol message.
    Msg(M),
    /// Session over; the client may disconnect.
    Stop,
}

/// Borrowing encoder for [`RtDown::Msg`]: serializes byte-identically to
/// `RtDown::Msg(msg)` — same variant index, same payload — without moving
/// or cloning the message into the envelope. This is what lets the fan-out
/// encode each outbound message exactly once, straight from the engine's
/// batch slice.
struct RtDownMsgRef<'a, M>(&'a M);

impl<M: Serialize> Serialize for RtDownMsgRef<'_, M> {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_newtype_variant("RtDown", 0, "Msg", self.0)
    }
}

enum Inbound<M> {
    Msg(ClientId, M),
    /// Orderly goodbye or lost connection; either ends the client's session.
    Done,
}

/// The server's side of a framed-TCP session: the merged inbound channel
/// the reader threads feed, plus one writer socket per seated client.
/// Implements [`ServerTransport`] so [`NodeDriver::run_server`] can drive
/// any engine over it.
pub struct TcpServerTransport<U, D> {
    rx: Receiver<Inbound<U>>,
    writers: Vec<Option<TcpStream>>,
    /// Recycled encode buffers: after warm-up, every frame encodes into a
    /// buffer from a previous batch instead of a fresh allocation.
    pool: BufferPool,
    /// Persistent pool draining egress lanes. Separate from the engine's
    /// compute executor by design: drain tasks block in socket `write`,
    /// and lanes stalled on a slow client must never occupy the lanes the
    /// analyze/route stages compute on. Sized by [`drain_workers`] (at
    /// least 4 even on one core — these lanes wait on I/O, not CPU).
    drain_pool: seve_exec::Executor,
    writev_batches: u64,
    _down: PhantomData<D>,
}

impl<U, D: Serialize + ShareKey + Sync> ServerTransport<U, D> for TcpServerTransport<U, D> {
    type Error = FrameError;

    fn recv(&mut self, timeout: Duration) -> Result<ServerEvent<U>, FrameError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(Inbound::Msg(from, m)) => ServerEvent::Msg(from, m),
            Ok(Inbound::Done) => ServerEvent::Done,
            Err(RecvTimeoutError::Timeout) => ServerEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => ServerEvent::Closed,
        })
    }

    fn send_batch(&mut self, out: &[(ClientId, D)]) -> Result<u64, FrameError> {
        let (bytes, batches) = fan_out(
            &mut self.writers,
            out,
            D::share_key,
            &mut self.pool,
            &self.drain_pool,
        )?;
        self.writev_batches += batches;
        Ok(bytes)
    }

    fn stop_all(&mut self) -> Result<(), FrameError> {
        // Best effort: a client that already vanished is not an error.
        for w in self.writers.iter_mut().flatten() {
            let _ = write_msg(w, &RtDown::<D>::Stop);
        }
        Ok(())
    }

    fn egress_stats(&self) -> EgressStats {
        let exec = self.drain_pool.stats();
        EgressStats {
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
            writev_batches: self.writev_batches,
            exec_tasks: exec.tasks,
            exec_steals: exec.steals,
            exec_busy_nanos: exec.busy_nanos,
            exec_queue_hwm: exec.queue_hwm,
        }
    }
}

/// Accept `n` clients on `listener` and run `engine` until every client
/// says goodbye. `tick` and `push` are the wall-clock cycle periods (push
/// ignored when the engine does not push). `world_digest` is the digest of
/// the initial world state; clients presenting a different digest are
/// rejected (their replicas could never converge).
pub fn run_server<W, S>(
    engine: S,
    listener: TcpListener,
    n: usize,
    tick: Duration,
    push: Duration,
    world_digest: u64,
) -> Result<ServerReport, FrameError>
where
    W: GameWorld,
    S: ServerNode<W>,
    S::Up: DeserializeOwned + 'static,
    S::Down: Serialize + ShareKey + Sync,
{
    let (tx, rx) = channel::unbounded::<Inbound<S::Up>>();
    let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut reader_handles = Vec::with_capacity(n);

    let mut accepted = 0usize;
    while accepted < n {
        let (stream, peer) = listener.accept()?;
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        // The first frame must identify the client.
        let hello: RtUp<S::Up> = reader.read_msg()?;
        let RtUp::Hello {
            client,
            world_digest: theirs,
        } = hello
        else {
            return Err(FrameError::Codec(crate::wire::WireError::Unsupported(
                "expected Hello as the first frame",
            )));
        };
        if theirs != world_digest {
            // Incompatible world build: refuse this client, keep waiting.
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: world digest \
                 {theirs:x} != ours {world_digest:x} (mismatched parameters?)"
            );
            drop(stream);
            continue;
        }
        if client as usize >= n {
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: id out of \
                 range (session has {n} seats)"
            );
            drop(stream);
            continue;
        }
        if writers[client as usize].is_some() {
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: seat already \
                 taken"
            );
            drop(stream);
            continue;
        }
        accepted += 1;
        let id = ClientId(client);
        writers[id.index()] = Some(stream);
        let tx = tx.clone();
        reader_handles.push(std::thread::spawn(move || loop {
            match reader.read_msg::<RtUp<S::Up>>() {
                Ok(RtUp::Msg(m)) => {
                    if tx.send(Inbound::Msg(id, m)).is_err() {
                        break;
                    }
                }
                Ok(RtUp::Bye) => {
                    // Count the goodbye but keep reading: the client still
                    // relays completions for tail actions it receives while
                    // other clients finish (its phase 3). The thread ends
                    // when the client closes the socket after Stop.
                    let _ = tx.send(Inbound::Done);
                }
                Ok(RtUp::Hello { .. }) => {
                    // Duplicate hello: ignore.
                }
                Err(_) => {
                    let _ = tx.send(Inbound::Done);
                    break;
                }
            }
        }));
    }

    let mut transport = TcpServerTransport {
        rx,
        writers,
        pool: BufferPool::new(),
        drain_pool: seve_exec::Executor::new(drain_workers()),
        writev_batches: 0,
        _down: PhantomData,
    };
    let report = NodeDriver::server(tick, push).run_server(engine, &mut transport, n)?;

    // Closing our channel end and the writer sockets unblocks the readers.
    drop(transport);
    drop(tx);
    for h in reader_handles {
        let _ = h.join();
    }

    Ok(report)
}

/// Coalescing threshold: the most frames handed to one `write_vectored`
/// call. Past this the syscall savings are already banked and the iovec
/// itself starts costing.
const WRITEV_MAX_FRAMES: usize = 64;

/// Width of the persistent drain pool: a few lanes per core covers
/// sockets blocked in `write`, floored at 4 so stall isolation holds even
/// on a single-core host (drain lanes wait on I/O, not CPU).
fn drain_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism().map_or(4, |p| (p.get() * 2).clamp(4, 16))
    })
}

/// One drain worker's unit of work on the persistent pool: pulls whole
/// lanes from the shared queue and returns `(bytes written, writev
/// batches)` or the first socket error it hit.
type DrainTask<'a> = Box<dyn FnOnce() -> Result<(u64, u64), FrameError> + Send + 'a>;

/// Write one engine step's outbound batch to the client sockets, returning
/// `(bytes written, vectored-write batches issued)`.
///
/// The encode-once egress stage of the real-time host, in two phases:
///
/// 1. **Encode.** Each message is framed exactly once into a buffer from
///    `pool` (length prefix back-patched — see
///    [`crate::frame::encode_frame_into`]). Messages whose `share_key`
///    matches an earlier message in the same batch — broadcast payloads
///    like GC notices and shared-span batches — reuse the earlier frame
///    (`Arc` clone) instead of re-encoding; `share_key` returning `None`
///    always encodes individually. Frame boundaries on the wire are one
///    frame per message, identical to the per-message `write_msg` path.
/// 2. **Drain.** Each busy destination's ordered frame list is written by
///    exactly one worker through `write_vectored` in chunks of up to
///    [`WRITEV_MAX_FRAMES`] frames. Worker tasks — capped at the drain
///    pool's width, not one per client — run on `exec`, the transport's
///    *persistent* drain pool (zero thread spawns per cycle), and pull
///    whole lanes from a shared queue, while a destination stalled in
///    `write` occupies only its task's lane and the rest keep draining.
///    One lane never splits across workers and successive `fan_out`
///    calls are sequential, so per-client FIFO delivery (the ordering
///    contract the replay log depends on) is preserved.
///
/// Afterwards every frame buffer whose references have drained returns to
/// `pool`, so the steady state allocates nothing.
pub fn fan_out<M: Serialize + Sync>(
    writers: &mut [Option<TcpStream>],
    out: &[(ClientId, M)],
    share_key: impl Fn(&M) -> Option<ShareId>,
    pool: &mut BufferPool,
    exec: &seve_exec::Executor,
) -> Result<(u64, u64), FrameError> {
    let mut frames: Vec<Arc<Vec<u8>>> = Vec::with_capacity(out.len());
    let mut lanes: Vec<Vec<Arc<Vec<u8>>>> = (0..writers.len()).map(|_| Vec::new()).collect();
    let result = encode_and_drain(writers, out, share_key, pool, exec, &mut frames, &mut lanes);

    // Recycle unconditionally — also when encode or drain bailed early —
    // so buffers taken this batch are never leaked and the pool's miss
    // counter stays truthful on the next one. The lane lists are done, so
    // each buffer is back to a single reference.
    drop(lanes);
    for f in frames {
        if let Ok(buf) = Arc::try_unwrap(f) {
            pool.put(buf);
        }
    }
    result
}

/// [`fan_out`]'s encode + drain phases, with the frame/lane lists owned by
/// the caller so it can recycle them on both the `Ok` and `Err` paths.
fn encode_and_drain<M: Serialize + Sync>(
    writers: &mut [Option<TcpStream>],
    out: &[(ClientId, M)],
    share_key: impl Fn(&M) -> Option<ShareId>,
    pool: &mut BufferPool,
    exec: &seve_exec::Executor,
    frames: &mut Vec<Arc<Vec<u8>>>,
    lanes: &mut [Vec<Arc<Vec<u8>>>],
) -> Result<(u64, u64), FrameError> {
    // Phase 1: encode each distinct frame once; build per-lane frame lists
    // (order preserved within each lane).
    {
        // The cache lives only for this batch: the Arcs in `frames` keep
        // the pointed-to buffers alive, so a ShareId can never alias a
        // recycled frame within the batch.
        let mut cache: HashMap<ShareId, Arc<Vec<u8>>> = HashMap::new();
        let encode = |msg: &M, pool: &mut BufferPool| -> Result<Arc<Vec<u8>>, FrameError> {
            let mut buf = pool.take();
            match encode_frame_into(&RtDownMsgRef(msg), &mut buf) {
                Ok(()) => Ok(Arc::new(buf)),
                Err(e) => {
                    // Hand the partially-written buffer straight back so a
                    // failed encode doesn't count as a leaked allocation.
                    pool.put(buf);
                    Err(e)
                }
            }
        };
        for (dest, msg) in out {
            if writers[dest.index()].is_none() {
                continue;
            }
            let frame = match share_key(msg) {
                Some(k) => match cache.entry(k) {
                    Entry::Occupied(e) => e.get().clone(),
                    Entry::Vacant(v) => {
                        let f = encode(msg, pool)?;
                        frames.push(Arc::clone(&f));
                        v.insert(Arc::clone(&f));
                        f
                    }
                },
                None => {
                    let f = encode(msg, pool)?;
                    frames.push(Arc::clone(&f));
                    f
                }
            };
            lanes[dest.index()].push(frame);
        }
    }

    // Phase 2: drain each busy lane. The writer slice is partitioned into
    // disjoint `&mut` sockets, so workers cannot interleave on a stream.
    let busy = lanes.iter().filter(|l| !l.is_empty()).count();
    if busy <= 1 {
        // Nothing to overlap: drain inline on this thread.
        let mut totals = (0u64, 0u64);
        for (w, lane) in writers.iter_mut().zip(lanes.iter()) {
            if let (Some(w), false) = (w.as_mut(), lane.is_empty()) {
                totals = drain_lane(w, lane)?;
            }
        }
        Ok(totals)
    } else {
        let lane_refs: Vec<(&mut TcpStream, &[Arc<Vec<u8>>])> = writers
            .iter_mut()
            .zip(lanes.iter())
            .filter_map(|(w, l)| match w {
                Some(w) if !l.is_empty() => Some((w, l.as_slice())),
                _ => None,
            })
            .collect();
        let workers = lane_refs.len().min(exec.width());
        let queue = std::sync::Mutex::new(lane_refs);
        let tasks: Vec<DrainTask<'_>> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let task: DrainTask<'_> = Box::new(move || {
                    let mut totals = (0u64, 0u64);
                    loop {
                        // Pop into a local first: a `while let` scrutinee
                        // would keep the MutexGuard alive across the
                        // blocking drain below, serializing all workers.
                        let job = queue.lock().expect("lane queue").pop();
                        let Some((w, lane)) = job else { break };
                        let (b, k) = drain_lane(w, lane)?;
                        totals.0 += b;
                        totals.1 += k;
                    }
                    Ok(totals)
                });
                task
            })
            .collect();
        let results = exec.run(tasks).expect("fan-out worker panicked");
        let mut totals = (0u64, 0u64);
        for r in results {
            let (b, k) = r?;
            totals.0 += b;
            totals.1 += k;
        }
        Ok(totals)
    }
}

/// Drain one client's ordered frame list through vectored writes, chunked
/// at [`WRITEV_MAX_FRAMES`]; partial writes re-slice from the first
/// unwritten byte. Returns `(bytes written, write batches issued)`.
fn drain_lane(w: &mut TcpStream, frames: &[Arc<Vec<u8>>]) -> Result<(u64, u64), FrameError> {
    let mut bytes = 0u64;
    let mut batches = 0u64;
    let mut chunk_start = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len().min(WRITEV_MAX_FRAMES));
    while chunk_start < frames.len() {
        let chunk = &frames[chunk_start..(chunk_start + WRITEV_MAX_FRAMES).min(frames.len())];
        let total: usize = chunk.iter().map(|f| f.len()).sum();
        // (frame index, byte offset) of the first unwritten byte.
        let mut at = (0usize, 0usize);
        let mut written = 0usize;
        while written < total {
            slices.clear();
            slices.push(IoSlice::new(&chunk[at.0][at.1..]));
            for f in &chunk[at.0 + 1..] {
                slices.push(IoSlice::new(f));
            }
            let n = w.write_vectored(&slices)?;
            if n == 0 {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write made no progress",
                )));
            }
            batches += 1;
            written += n;
            // Advance (frame, offset) past the bytes just written.
            let mut rem = n;
            while rem > 0 {
                let avail = chunk[at.0].len() - at.1;
                if rem >= avail {
                    rem -= avail;
                    at = (at.0 + 1, 0);
                } else {
                    at.1 += rem;
                    rem = 0;
                }
            }
        }
        bytes += total as u64;
        chunk_start += chunk.len();
    }
    w.flush()?;
    Ok((bytes, batches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn borrowed_envelope_encodes_like_the_owned_variant() {
        let msg = ("payload".to_string(), vec![1u64, 2, 3]);
        let owned = wire::to_bytes(&RtDown::Msg(msg.clone())).unwrap();
        let borrowed = wire::to_bytes(&RtDownMsgRef(&msg)).unwrap();
        assert_eq!(owned, borrowed);
    }
}

//! The threaded TCP server host.
//!
//! Hosts any [`ServerNode`] engine — the exact state machines the
//! simulator drives — over real sockets. The socket machinery lives here
//! (accept + hello handshake, one reader thread per client feeding a
//! channel, framed parallel fan-out back to the clients), packaged as a
//! [`TcpServerTransport`]; the engine loop itself — wall-clock tick (τ)
//! and push (ω·RTT) timers interleaved with message dispatch — is the
//! driver layer's [`NodeDriver::run_server`], shared with the in-process
//! backend.

use crate::frame::{encode_frame_into, write_msg, FrameError, FrameReader};
use crate::wire::BufferPool;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use seve_core::engine::{ServerNode, ShareId, ShareKey};
use seve_driver::{
    session_token, EgressStats, NodeDriver, ServerEvent, ServerTransport, SessionParams, SessionUp,
    SupervisedServerTransport,
};
use seve_world::ids::ClientId;
use seve_world::GameWorld;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{self, IoSlice, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use seve_driver::ServerReport;

/// Client → server transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtUp<M> {
    /// Identify the connecting client.
    Hello {
        /// The client index.
        client: u16,
        /// Digest of the client's initial world state. Replicas built from
        /// different world parameters can never converge; the server
        /// rejects mismatches at the door instead of diverging silently.
        world_digest: u64,
        /// The session token (see [`session_token`]). Lets a reconnecting
        /// client reclaim its seat mid-run; a connection presenting the
        /// wrong token for an occupied seat is refused.
        token: u64,
    },
    /// A protocol message.
    Msg(M),
    /// The client has finished its workload and drained.
    Bye,
}

/// Server → client transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtDown<M> {
    /// A protocol message.
    Msg(M),
    /// Session over; the client may disconnect.
    Stop,
}

/// Borrowing encoder for [`RtDown::Msg`]: serializes byte-identically to
/// `RtDown::Msg(msg)` — same variant index, same payload — without moving
/// or cloning the message into the envelope. This is what lets the fan-out
/// encode each outbound message exactly once, straight from the engine's
/// batch slice.
struct RtDownMsgRef<'a, M>(&'a M);

impl<M: Serialize> Serialize for RtDownMsgRef<'_, M> {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_newtype_variant("RtDown", 0, "Msg", self.0)
    }
}

enum Inbound<M> {
    Msg(ClientId, M),
    /// Orderly goodbye.
    Done(ClientId),
    /// Connection lost without a goodbye (read error / EOF).
    Gone(ClientId),
}

/// Writer sockets shared between the transport (fan-out) and the acceptor
/// thread (seat installs and mid-run re-attaches).
type SharedWriters = Arc<Mutex<Vec<Option<TcpStream>>>>;

/// The server's side of a framed-TCP session: the merged inbound channel
/// the reader threads feed, plus one writer socket per seated client
/// (shared with the acceptor thread, which swaps sockets on resume).
/// Implements [`ServerTransport`] so [`NodeDriver::run_server`] can drive
/// any engine over it.
pub struct TcpServerTransport<U, D> {
    rx: Receiver<Inbound<U>>,
    writers: SharedWriters,
    /// Recycled encode buffers: after warm-up, every frame encodes into a
    /// buffer from a previous batch instead of a fresh allocation.
    pool: BufferPool,
    /// Persistent pool draining egress lanes. Separate from the engine's
    /// compute executor by design: drain tasks block in socket `write`,
    /// and lanes stalled on a slow client must never occupy the lanes the
    /// analyze/route stages compute on. Sized by [`drain_workers`] (at
    /// least 4 even on one core — these lanes wait on I/O, not CPU).
    drain_pool: seve_exec::Executor,
    writev_batches: u64,
    _down: PhantomData<D>,
}

impl<U, D: Serialize + ShareKey + Sync> ServerTransport<U, D> for TcpServerTransport<U, D> {
    type Error = FrameError;

    fn recv(&mut self, timeout: Duration) -> Result<ServerEvent<U>, FrameError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(Inbound::Msg(from, m)) => ServerEvent::Msg(from, m),
            Ok(Inbound::Done(c)) => ServerEvent::Done(c),
            Ok(Inbound::Gone(c)) => ServerEvent::Gone(c),
            Err(RecvTimeoutError::Timeout) => ServerEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => ServerEvent::Closed,
        })
    }

    fn send_batch(&mut self, out: &[(ClientId, D)]) -> Result<u64, FrameError> {
        let mut writers = self.writers.lock().expect("writer seats");
        let (bytes, batches) = fan_out(
            &mut writers,
            out,
            D::share_key,
            &mut self.pool,
            &self.drain_pool,
        )?;
        self.writev_batches += batches;
        Ok(bytes)
    }

    fn stop_all(&mut self) -> Result<(), FrameError> {
        // Best effort: a client that already vanished is not an error.
        let mut writers = self.writers.lock().expect("writer seats");
        for w in writers.iter_mut().flatten() {
            let _ = write_msg(w, &RtDown::<D>::Stop);
        }
        Ok(())
    }

    fn release(&mut self, c: ClientId) -> Result<(), FrameError> {
        // Reap: retire the egress lane NOW. `shutdown(Both)` (not just a
        // drop) also unblocks the client's reader thread mid-`read`, so a
        // crashed client can no longer strand its session — its lane, its
        // pooled frames, and its reader all release here.
        let mut writers = self.writers.lock().expect("writer seats");
        if let Some(s) = writers[c.index()].take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        Ok(())
    }

    fn egress_stats(&self) -> EgressStats {
        let exec = self.drain_pool.stats();
        EgressStats {
            pool_hits: self.pool.hits(),
            pool_misses: self.pool.misses(),
            writev_batches: self.writev_batches,
            pool_outstanding: self.pool.outstanding(),
            exec_tasks: exec.tasks,
            exec_steals: exec.steals,
            exec_busy_nanos: exec.busy_nanos,
            exec_queue_hwm: exec.queue_hwm,
            ..EgressStats::default()
        }
    }
}

/// Handle to the background accept/handshake thread. It outlives the
/// initial seating round so clients that lose their connection mid-run can
/// reconnect and resume their session.
struct Acceptor {
    stop: Arc<AtomicBool>,
    writers: SharedWriters,
    handle: std::thread::JoinHandle<()>,
}

impl Acceptor {
    /// Stop accepting, retire every seated writer (`shutdown(Both)` also
    /// unblocks readers stuck in `read`), and join the acceptor thread —
    /// which joins its reader threads on the way out.
    fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.writers.lock().expect("writer seats").iter_mut() {
            if let Some(s) = w.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let _ = self.handle.join();
    }
}

/// Spawn the accept/handshake thread for an `n`-seat session.
///
/// `tokens` selects the seating policy: `Some(per-seat tokens)` means a
/// supervised session — a connection presenting the right token may take
/// an *occupied* seat (mid-run resume; the stale socket is shut down and
/// its reader silenced via a generation counter) — while `None` means
/// plain sessions where an occupied seat refuses newcomers.
fn spawn_acceptor<U>(
    listener: TcpListener,
    n: usize,
    world_digest: u64,
    tokens: Option<Arc<Vec<u64>>>,
    tx: Sender<Inbound<U>>,
) -> io::Result<Acceptor>
where
    U: DeserializeOwned + Send + 'static,
{
    // Nonblocking accept so the thread can notice the stop flag; seated
    // streams are flipped back to blocking before the handshake.
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let writers: SharedWriters = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let gens: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
    let handle = {
        let stop = Arc::clone(&stop);
        let writers = Arc::clone(&writers);
        std::thread::spawn(move || {
            let mut readers = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let stream = match listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                };
                if let Ok(Some(r)) = seat_client::<U>(
                    stream,
                    n,
                    world_digest,
                    tokens.as_deref(),
                    &writers,
                    &gens,
                    &tx,
                ) {
                    readers.push(r);
                }
            }
            for r in readers {
                let _ = r.join();
            }
        })
    };
    Ok(Acceptor {
        stop,
        writers,
        handle,
    })
}

/// Handshake one freshly accepted connection and, if it checks out, seat
/// it: install its writer, bump the seat's generation, and spawn its
/// reader thread. Returns `Ok(None)` for rejected connections.
fn seat_client<U>(
    stream: TcpStream,
    n: usize,
    world_digest: u64,
    tokens: Option<&Vec<u64>>,
    writers: &SharedWriters,
    gens: &Arc<Vec<AtomicU64>>,
    tx: &Sender<Inbound<U>>,
) -> io::Result<Option<std::thread::JoinHandle<()>>>
where
    U: DeserializeOwned + Send + 'static,
{
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    // A peer that connects but never completes its hello must not wedge
    // the acceptor — bound the handshake read, then lift the bound for
    // the session proper.
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    let mut reader = FrameReader::new(stream.try_clone()?);
    // The first frame must identify the client.
    let Ok(RtUp::Hello {
        client,
        world_digest: theirs,
        token,
    }) = reader.read_msg::<RtUp<U>>()
    else {
        return Ok(None);
    };
    if theirs != world_digest {
        // Incompatible world build: replicas built from different world
        // parameters can never converge, so refuse at the door.
        eprintln!(
            "seve-rt: rejecting client {client}: world digest {theirs:x} != \
             ours {world_digest:x} (mismatched parameters?)"
        );
        return Ok(None);
    }
    if client as usize >= n {
        eprintln!("seve-rt: rejecting client {client}: id out of range (session has {n} seats)");
        return Ok(None);
    }
    match tokens {
        Some(tokens) => {
            if token != tokens[client as usize] {
                eprintln!("seve-rt: rejecting client {client}: bad session token");
                return Ok(None);
            }
        }
        None => {
            if writers.lock().expect("writer seats")[client as usize].is_some() {
                eprintln!("seve-rt: rejecting client {client}: seat already taken");
                return Ok(None);
            }
        }
    }
    stream.set_read_timeout(None)?;

    let id = ClientId(client);
    // Bump the seat generation BEFORE retiring the old socket, so the old
    // reader — woken by the shutdown — observes a newer generation and
    // stays quiet instead of reporting a spurious loss.
    let gen = gens[id.index()].fetch_add(1, Ordering::SeqCst) + 1;
    let old = writers.lock().expect("writer seats")[id.index()].replace(stream);
    if let Some(old) = old {
        let _ = old.shutdown(Shutdown::Both);
    }
    let tx = tx.clone();
    let gens = Arc::clone(gens);
    Ok(Some(std::thread::spawn(move || loop {
        match reader.read_msg::<RtUp<U>>() {
            Ok(RtUp::Msg(m)) => {
                if tx.send(Inbound::Msg(id, m)).is_err() {
                    break;
                }
            }
            Ok(RtUp::Bye) => {
                // Count the goodbye but keep reading: the client still
                // relays completions for tail actions it receives while
                // other clients finish (its phase 3). The thread ends
                // when the client closes the socket after Stop.
                let _ = tx.send(Inbound::Done(id));
            }
            Ok(RtUp::Hello { .. }) => {
                // Duplicate hello: ignore.
            }
            Err(_) => {
                // Only the connection currently holding the seat reports
                // the loss; a reader whose socket was replaced by a
                // resume stays quiet.
                if gens[id.index()].load(Ordering::SeqCst) == gen {
                    let _ = tx.send(Inbound::Gone(id));
                }
                break;
            }
        }
    })))
}

/// Block until every seat has a writer installed (the initial full house).
fn wait_for_full_house(writers: &SharedWriters) {
    loop {
        if writers
            .lock()
            .expect("writer seats")
            .iter()
            .all(Option::is_some)
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Accept `n` clients on `listener` and run `engine` until every client
/// says goodbye. `tick` and `push` are the wall-clock cycle periods (push
/// ignored when the engine does not push). `world_digest` is the digest of
/// the initial world state; clients presenting a different digest are
/// rejected (their replicas could never converge). Runs a supervised
/// session with [`SessionParams::default`]; see [`run_server_with`].
pub fn run_server<W, S>(
    engine: S,
    listener: TcpListener,
    n: usize,
    tick: Duration,
    push: Duration,
    world_digest: u64,
) -> Result<ServerReport, FrameError>
where
    W: GameWorld,
    S: ServerNode<W>,
    S::Up: DeserializeOwned + Send + 'static,
    S::Down: Serialize + ShareKey + Sync + Clone,
{
    run_server_with(
        engine,
        listener,
        n,
        tick,
        push,
        world_digest,
        SessionParams::default(),
    )
}

/// [`run_server`] with explicit [`SessionParams`].
///
/// When `session.supervised`, the TCP transport carries sequence-numbered
/// session envelopes and is wrapped in a [`SupervisedServerTransport`]:
/// down-lane frames are resent past the client's last cumulative ack on
/// RTO, crashed clients are reaped after the liveness deadline, and a
/// reconnecting client may reclaim its seat mid-run by presenting its
/// session token. With `session.supervised == false` the wire format is
/// the bare protocol messages, byte-identical to the pre-session host.
pub fn run_server_with<W, S>(
    engine: S,
    listener: TcpListener,
    n: usize,
    tick: Duration,
    push: Duration,
    world_digest: u64,
    session: SessionParams,
) -> Result<ServerReport, FrameError>
where
    W: GameWorld,
    S: ServerNode<W>,
    S::Up: DeserializeOwned + Send + 'static,
    S::Down: Serialize + ShareKey + Sync + Clone,
{
    let tick_driver = NodeDriver::server(tick, push);
    if session.supervised {
        let (tx, rx) = channel::unbounded::<Inbound<SessionUp<S::Up>>>();
        let tokens: Arc<Vec<u64>> = Arc::new(
            (0..n as u16)
                .map(|c| session_token(session.seed, ClientId(c)))
                .collect(),
        );
        let acceptor = spawn_acceptor(listener, n, world_digest, Some(tokens), tx.clone())?;
        wait_for_full_house(&acceptor.writers);
        let inner = TcpServerTransport {
            rx,
            writers: Arc::clone(&acceptor.writers),
            pool: BufferPool::new(),
            drain_pool: seve_exec::Executor::new(drain_workers()),
            writev_batches: 0,
            _down: PhantomData,
        };
        let mut transport = SupervisedServerTransport::new(inner, n, session);
        let report = tick_driver.run_server(engine, &mut transport, n);
        drop(transport);
        drop(tx);
        acceptor.shutdown();
        report
    } else {
        let (tx, rx) = channel::unbounded::<Inbound<S::Up>>();
        let acceptor = spawn_acceptor(listener, n, world_digest, None, tx.clone())?;
        wait_for_full_house(&acceptor.writers);
        let mut transport = TcpServerTransport {
            rx,
            writers: Arc::clone(&acceptor.writers),
            pool: BufferPool::new(),
            drain_pool: seve_exec::Executor::new(drain_workers()),
            writev_batches: 0,
            _down: PhantomData,
        };
        let report = tick_driver.run_server(engine, &mut transport, n);
        drop(transport);
        drop(tx);
        acceptor.shutdown();
        report
    }
}

/// Coalescing threshold: the most frames handed to one `write_vectored`
/// call. Past this the syscall savings are already banked and the iovec
/// itself starts costing.
const WRITEV_MAX_FRAMES: usize = 64;

/// Width of the persistent drain pool: a few lanes per core covers
/// sockets blocked in `write`, floored at 4 so stall isolation holds even
/// on a single-core host (drain lanes wait on I/O, not CPU).
fn drain_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::thread::available_parallelism().map_or(4, |p| (p.get() * 2).clamp(4, 16))
    })
}

/// One drain worker's unit of work on the persistent pool: pulls whole
/// lanes from the shared queue and returns `(bytes written, writev
/// batches, dead lane indices)` or the first *non-disconnect* socket
/// error it hit.
type DrainTask<'a> = Box<dyn FnOnce() -> Result<(u64, u64, Vec<usize>), FrameError> + Send + 'a>;

/// Is this write error the peer being gone (as opposed to a local fault)?
/// A vanished peer is a liveness event for the supervision layer, not a
/// fatal transport error: the lane is unseated and the tick goes on.
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
    )
}

/// Write one engine step's outbound batch to the client sockets, returning
/// `(bytes written, vectored-write batches issued)`.
///
/// The encode-once egress stage of the real-time host, in two phases:
///
/// 1. **Encode.** Each message is framed exactly once into a buffer from
///    `pool` (length prefix back-patched — see
///    [`crate::frame::encode_frame_into`]). Messages whose `share_key`
///    matches an earlier message in the same batch — broadcast payloads
///    like GC notices and shared-span batches — reuse the earlier frame
///    (`Arc` clone) instead of re-encoding; `share_key` returning `None`
///    always encodes individually. Frame boundaries on the wire are one
///    frame per message, identical to the per-message `write_msg` path.
/// 2. **Drain.** Each busy destination's ordered frame list is written by
///    exactly one worker through `write_vectored` in chunks of up to
///    [`WRITEV_MAX_FRAMES`] frames. Worker tasks — capped at the drain
///    pool's width, not one per client — run on `exec`, the transport's
///    *persistent* drain pool (zero thread spawns per cycle), and pull
///    whole lanes from a shared queue, while a destination stalled in
///    `write` occupies only its task's lane and the rest keep draining.
///    One lane never splits across workers and successive `fan_out`
///    calls are sequential, so per-client FIFO delivery (the ordering
///    contract the replay log depends on) is preserved.
///
/// Afterwards every frame buffer whose references have drained returns to
/// `pool`, so the steady state allocates nothing.
pub fn fan_out<M: Serialize + Sync>(
    writers: &mut [Option<TcpStream>],
    out: &[(ClientId, M)],
    share_key: impl Fn(&M) -> Option<ShareId>,
    pool: &mut BufferPool,
    exec: &seve_exec::Executor,
) -> Result<(u64, u64), FrameError> {
    let mut frames: Vec<Arc<Vec<u8>>> = Vec::with_capacity(out.len());
    let mut lanes: Vec<Vec<Arc<Vec<u8>>>> = (0..writers.len()).map(|_| Vec::new()).collect();
    let result = encode_and_drain(writers, out, share_key, pool, exec, &mut frames, &mut lanes);

    // Recycle unconditionally — also when encode or drain bailed early —
    // so buffers taken this batch are never leaked and the pool's miss
    // counter stays truthful on the next one. The lane lists are done, so
    // each buffer is back to a single reference.
    drop(lanes);
    for f in frames {
        if let Ok(buf) = Arc::try_unwrap(f) {
            pool.put(buf);
        }
    }
    result
}

/// [`fan_out`]'s encode + drain phases, with the frame/lane lists owned by
/// the caller so it can recycle them on both the `Ok` and `Err` paths.
fn encode_and_drain<M: Serialize + Sync>(
    writers: &mut [Option<TcpStream>],
    out: &[(ClientId, M)],
    share_key: impl Fn(&M) -> Option<ShareId>,
    pool: &mut BufferPool,
    exec: &seve_exec::Executor,
    frames: &mut Vec<Arc<Vec<u8>>>,
    lanes: &mut [Vec<Arc<Vec<u8>>>],
) -> Result<(u64, u64), FrameError> {
    // Phase 1: encode each distinct frame once; build per-lane frame lists
    // (order preserved within each lane).
    {
        // The cache lives only for this batch: the Arcs in `frames` keep
        // the pointed-to buffers alive, so a ShareId can never alias a
        // recycled frame within the batch.
        let mut cache: HashMap<ShareId, Arc<Vec<u8>>> = HashMap::new();
        let encode = |msg: &M, pool: &mut BufferPool| -> Result<Arc<Vec<u8>>, FrameError> {
            let mut buf = pool.take();
            match encode_frame_into(&RtDownMsgRef(msg), &mut buf) {
                Ok(()) => Ok(Arc::new(buf)),
                Err(e) => {
                    // Hand the partially-written buffer straight back so a
                    // failed encode doesn't count as a leaked allocation.
                    pool.put(buf);
                    Err(e)
                }
            }
        };
        for (dest, msg) in out {
            if writers[dest.index()].is_none() {
                continue;
            }
            let frame = match share_key(msg) {
                Some(k) => match cache.entry(k) {
                    Entry::Occupied(e) => e.get().clone(),
                    Entry::Vacant(v) => {
                        let f = encode(msg, pool)?;
                        frames.push(Arc::clone(&f));
                        v.insert(Arc::clone(&f));
                        f
                    }
                },
                None => {
                    let f = encode(msg, pool)?;
                    frames.push(Arc::clone(&f));
                    f
                }
            };
            lanes[dest.index()].push(frame);
        }
    }

    // Phase 2: drain each busy lane. The writer slice is partitioned into
    // disjoint `&mut` sockets, so workers cannot interleave on a stream.
    // A lane whose peer vanished mid-write is unseated (its writer taken
    // and shut down), never fatal: the supervised layer still holds the
    // frames in its resend window and will retransmit once the client
    // resumes — or reap the lane at the liveness deadline.
    let busy = lanes.iter().filter(|l| !l.is_empty()).count();
    let mut totals = (0u64, 0u64);
    let mut dead: Vec<usize> = Vec::new();
    if busy <= 1 {
        // Nothing to overlap: drain inline on this thread.
        for (i, (w, lane)) in writers.iter_mut().zip(lanes.iter()).enumerate() {
            if let (Some(sock), false) = (w.as_mut(), lane.is_empty()) {
                let (b, k, down) = drain_lane(sock, lane)?;
                totals = (totals.0 + b, totals.1 + k);
                if down {
                    dead.push(i);
                }
            }
        }
    } else {
        type LaneRef<'a> = (usize, &'a mut TcpStream, &'a [Arc<Vec<u8>>]);
        let lane_refs: Vec<LaneRef<'_>> = writers
            .iter_mut()
            .zip(lanes.iter())
            .enumerate()
            .filter_map(|(i, (w, l))| match w {
                Some(w) if !l.is_empty() => Some((i, w, l.as_slice())),
                _ => None,
            })
            .collect();
        let workers = lane_refs.len().min(exec.width());
        let queue = std::sync::Mutex::new(lane_refs);
        let tasks: Vec<DrainTask<'_>> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let task: DrainTask<'_> = Box::new(move || {
                    let mut totals = (0u64, 0u64, Vec::new());
                    loop {
                        // Pop into a local first: a `while let` scrutinee
                        // would keep the MutexGuard alive across the
                        // blocking drain below, serializing all workers.
                        let job = queue.lock().expect("lane queue").pop();
                        let Some((i, w, lane)) = job else { break };
                        let (b, k, down) = drain_lane(w, lane)?;
                        totals.0 += b;
                        totals.1 += k;
                        if down {
                            totals.2.push(i);
                        }
                    }
                    Ok(totals)
                });
                task
            })
            .collect();
        let results = exec.run(tasks).expect("fan-out worker panicked");
        for r in results {
            let (b, k, mut down) = r?;
            totals.0 += b;
            totals.1 += k;
            dead.append(&mut down);
        }
    }
    for i in dead {
        if let Some(s) = writers[i].take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
    Ok(totals)
}

/// Drain one client's ordered frame list through vectored writes, chunked
/// at [`WRITEV_MAX_FRAMES`]; partial writes re-slice from the first
/// unwritten byte. Returns `(bytes written, write batches issued, peer
/// gone)` — a disconnect ends the lane quietly (see [`is_disconnect`]);
/// only local faults surface as errors.
fn drain_lane(w: &mut TcpStream, frames: &[Arc<Vec<u8>>]) -> Result<(u64, u64, bool), FrameError> {
    let mut bytes = 0u64;
    let mut batches = 0u64;
    let mut chunk_start = 0usize;
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len().min(WRITEV_MAX_FRAMES));
    while chunk_start < frames.len() {
        let chunk = &frames[chunk_start..(chunk_start + WRITEV_MAX_FRAMES).min(frames.len())];
        let total: usize = chunk.iter().map(|f| f.len()).sum();
        // (frame index, byte offset) of the first unwritten byte.
        let mut at = (0usize, 0usize);
        let mut written = 0usize;
        while written < total {
            slices.clear();
            slices.push(IoSlice::new(&chunk[at.0][at.1..]));
            for f in &chunk[at.0 + 1..] {
                slices.push(IoSlice::new(f));
            }
            let n = match w.write_vectored(&slices) {
                Ok(0) => return Ok((bytes, batches, true)),
                Ok(n) => n,
                Err(e) if is_disconnect(&e) => return Ok((bytes, batches, true)),
                Err(e) => return Err(FrameError::Io(e)),
            };
            batches += 1;
            written += n;
            // Advance (frame, offset) past the bytes just written.
            let mut rem = n;
            while rem > 0 {
                let avail = chunk[at.0].len() - at.1;
                if rem >= avail {
                    rem -= avail;
                    at = (at.0 + 1, 0);
                } else {
                    at.1 += rem;
                    rem = 0;
                }
            }
        }
        bytes += total as u64;
        chunk_start += chunk.len();
    }
    match w.flush() {
        Ok(()) => Ok((bytes, batches, false)),
        Err(e) if is_disconnect(&e) => Ok((bytes, batches, true)),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    #[test]
    fn borrowed_envelope_encodes_like_the_owned_variant() {
        let msg = ("payload".to_string(), vec![1u64, 2, 3]);
        let owned = wire::to_bytes(&RtDown::Msg(msg.clone())).unwrap();
        let borrowed = wire::to_bytes(&RtDownMsgRef(&msg)).unwrap();
        assert_eq!(owned, borrowed);
    }
}

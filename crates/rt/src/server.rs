//! The threaded TCP server host.
//!
//! Hosts any [`ServerNode`] engine — the exact state machines the
//! simulator drives — over real sockets. The socket machinery lives here
//! (accept + hello handshake, one reader thread per client feeding a
//! channel, framed parallel fan-out back to the clients), packaged as a
//! [`TcpServerTransport`]; the engine loop itself — wall-clock tick (τ)
//! and push (ω·RTT) timers interleaved with message dispatch — is the
//! driver layer's [`NodeDriver::run_server`], shared with the in-process
//! backend.

use crate::frame::{write_msg, FrameError, FrameReader};
use crossbeam::channel::{self, Receiver, RecvTimeoutError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use seve_core::engine::ServerNode;
use seve_driver::{NodeDriver, ServerEvent, ServerTransport};
use seve_world::ids::ClientId;
use seve_world::GameWorld;
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

pub use seve_driver::ServerReport;

/// Client → server transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtUp<M> {
    /// Identify the connecting client.
    Hello {
        /// The client index.
        client: u16,
        /// Digest of the client's initial world state. Replicas built from
        /// different world parameters can never converge; the server
        /// rejects mismatches at the door instead of diverging silently.
        world_digest: u64,
    },
    /// A protocol message.
    Msg(M),
    /// The client has finished its workload and drained.
    Bye,
}

/// Server → client transport envelope.
#[derive(Serialize, Deserialize, Debug)]
pub enum RtDown<M> {
    /// A protocol message.
    Msg(M),
    /// Session over; the client may disconnect.
    Stop,
}

enum Inbound<M> {
    Msg(ClientId, M),
    /// Orderly goodbye or lost connection; either ends the client's session.
    Done,
}

/// The server's side of a framed-TCP session: the merged inbound channel
/// the reader threads feed, plus one writer socket per seated client.
/// Implements [`ServerTransport`] so [`NodeDriver::run_server`] can drive
/// any engine over it.
pub struct TcpServerTransport<U, D> {
    rx: Receiver<Inbound<U>>,
    writers: Vec<Option<TcpStream>>,
    _down: PhantomData<D>,
}

impl<U, D: Serialize + Clone + Sync> ServerTransport<U, D> for TcpServerTransport<U, D> {
    type Error = FrameError;

    fn recv(&mut self, timeout: Duration) -> Result<ServerEvent<U>, FrameError> {
        Ok(match self.rx.recv_timeout(timeout) {
            Ok(Inbound::Msg(from, m)) => ServerEvent::Msg(from, m),
            Ok(Inbound::Done) => ServerEvent::Done,
            Err(RecvTimeoutError::Timeout) => ServerEvent::Timeout,
            Err(RecvTimeoutError::Disconnected) => ServerEvent::Closed,
        })
    }

    fn send_batch(&mut self, out: &[(ClientId, D)]) -> Result<u64, FrameError> {
        fan_out(&mut self.writers, out)
    }

    fn stop_all(&mut self) -> Result<(), FrameError> {
        // Best effort: a client that already vanished is not an error.
        for w in self.writers.iter_mut().flatten() {
            let _ = write_msg(w, &RtDown::<D>::Stop);
        }
        Ok(())
    }
}

/// Accept `n` clients on `listener` and run `engine` until every client
/// says goodbye. `tick` and `push` are the wall-clock cycle periods (push
/// ignored when the engine does not push). `world_digest` is the digest of
/// the initial world state; clients presenting a different digest are
/// rejected (their replicas could never converge).
pub fn run_server<W, S>(
    engine: S,
    listener: TcpListener,
    n: usize,
    tick: Duration,
    push: Duration,
    world_digest: u64,
) -> Result<ServerReport, FrameError>
where
    W: GameWorld,
    S: ServerNode<W>,
    S::Up: DeserializeOwned + 'static,
    S::Down: Serialize + Clone + Sync,
{
    let (tx, rx) = channel::unbounded::<Inbound<S::Up>>();
    let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    let mut reader_handles = Vec::with_capacity(n);

    let mut accepted = 0usize;
    while accepted < n {
        let (stream, peer) = listener.accept()?;
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        // The first frame must identify the client.
        let hello: RtUp<S::Up> = reader.read_msg()?;
        let RtUp::Hello {
            client,
            world_digest: theirs,
        } = hello
        else {
            return Err(FrameError::Codec(crate::wire::WireError(
                "expected Hello as the first frame".into(),
            )));
        };
        if theirs != world_digest {
            // Incompatible world build: refuse this client, keep waiting.
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: world digest \
                 {theirs:x} != ours {world_digest:x} (mismatched parameters?)"
            );
            drop(stream);
            continue;
        }
        if client as usize >= n {
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: id out of \
                 range (session has {n} seats)"
            );
            drop(stream);
            continue;
        }
        if writers[client as usize].is_some() {
            eprintln!(
                "seve-rt: rejecting client {client} from {peer}: seat already \
                 taken"
            );
            drop(stream);
            continue;
        }
        accepted += 1;
        let id = ClientId(client);
        writers[id.index()] = Some(stream);
        let tx = tx.clone();
        reader_handles.push(std::thread::spawn(move || loop {
            match reader.read_msg::<RtUp<S::Up>>() {
                Ok(RtUp::Msg(m)) => {
                    if tx.send(Inbound::Msg(id, m)).is_err() {
                        break;
                    }
                }
                Ok(RtUp::Bye) => {
                    // Count the goodbye but keep reading: the client still
                    // relays completions for tail actions it receives while
                    // other clients finish (its phase 3). The thread ends
                    // when the client closes the socket after Stop.
                    let _ = tx.send(Inbound::Done);
                }
                Ok(RtUp::Hello { .. }) => {
                    // Duplicate hello: ignore.
                }
                Err(_) => {
                    let _ = tx.send(Inbound::Done);
                    break;
                }
            }
        }));
    }

    let mut transport = TcpServerTransport {
        rx,
        writers,
        _down: PhantomData,
    };
    let report = NodeDriver::server(tick, push).run_server(engine, &mut transport, n)?;

    // Closing our channel end and the writer sockets unblocks the readers.
    drop(transport);
    drop(tx);
    for h in reader_handles {
        let _ = h.join();
    }

    Ok(report)
}

/// Write one engine step's outbound batch to the client sockets, returning
/// the bytes written.
///
/// The parallel egress stage of the real-time host: when the batch targets
/// more than one client, the per-client message groups fan out across
/// scoped worker threads, one worker per destination client, each owning
/// that client's socket for the duration of the call. All of a client's
/// messages are written by exactly one worker in batch order, and
/// successive `fan_out` calls are sequential, so per-client FIFO delivery
/// — the ordering contract the replay log depends on — is preserved while
/// slow receivers no longer stall the whole fan-out. With zero or one
/// destination the call degenerates to a plain sequential write loop.
pub fn fan_out<M: Serialize + Clone + Sync>(
    writers: &mut [Option<TcpStream>],
    out: &[(ClientId, M)],
) -> Result<u64, FrameError> {
    // Group messages by destination, preserving order within each group.
    let mut groups: Vec<Vec<&M>> = (0..writers.len()).map(|_| Vec::new()).collect();
    for (dest, msg) in out {
        if writers[dest.index()].is_some() {
            groups[dest.index()].push(msg);
        }
    }
    if groups.iter().filter(|g| !g.is_empty()).count() <= 1 {
        // Nothing to overlap: write sequentially on this thread.
        let mut bytes = 0u64;
        for (dest, msg) in out {
            if let Some(w) = writers[dest.index()].as_mut() {
                bytes += write_msg(w, &RtDown::Msg(msg.clone()))? as u64;
            }
        }
        return Ok(bytes);
    }
    // One worker per busy destination. The writer slice is partitioned into
    // disjoint `&mut` sockets, so workers cannot interleave on a stream.
    let lanes: Vec<(&mut TcpStream, &[&M])> = writers
        .iter_mut()
        .zip(groups.iter())
        .filter_map(|(w, g)| match w {
            Some(w) if !g.is_empty() => Some((w, g.as_slice())),
            _ => None,
        })
        .collect();
    let results = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|(w, msgs)| {
                s.spawn(move |_| -> Result<u64, FrameError> {
                    let mut bytes = 0u64;
                    for msg in msgs {
                        bytes += write_msg(w, &RtDown::Msg((*msg).clone()))? as u64;
                    }
                    Ok(bytes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("fan-out scope panicked");
    let mut bytes = 0u64;
    for r in results {
        bytes += r?;
    }
    Ok(bytes)
}

//! Length-prefixed framing over TCP.
//!
//! Each frame is a `u32` little-endian payload length followed by the
//! payload (a [`crate::wire`]-encoded message). Frames are capped to keep a
//! corrupted length prefix from allocating the moon.

use crate::wire::{self, WireError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum accepted frame payload, bytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Framing / transport errors.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(io::Error),
    /// Payload failed to encode/decode.
    Codec(WireError),
    /// A frame length exceeded [`MAX_FRAME`].
    Oversize(usize),
    /// The peer closed the connection.
    Closed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Codec(e) => write!(f, "{e}"),
            FrameError::Oversize(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Codec(e)
    }
}

/// Encode one message as a complete frame — length prefix and payload in
/// one contiguous buffer — appending to `buf` (typically a recycled
/// [`wire::BufferPool`] buffer). The 4-byte prefix slot is reserved up
/// front and back-patched once the payload length is known, so the value
/// is serialized exactly once with no intermediate allocation.
pub fn encode_frame_into<T: Serialize>(msg: &T, buf: &mut Vec<u8>) -> Result<(), FrameError> {
    let frame_start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    wire::to_bytes_into(msg, buf)?;
    let payload_len = buf.len() - frame_start - 4;
    if payload_len > MAX_FRAME {
        buf.truncate(frame_start);
        return Err(FrameError::Oversize(payload_len));
    }
    buf[frame_start..frame_start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    Ok(())
}

/// Write one message as a frame. Returns the frame's size on the wire.
pub fn write_msg<T: Serialize>(stream: &mut TcpStream, msg: &T) -> Result<usize, FrameError> {
    let mut frame = Vec::new();
    encode_frame_into(msg, &mut frame)?;
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(frame.len())
}

/// A buffered frame reader over a stream.
pub struct FrameReader {
    stream: TcpStream,
    /// Unconsumed bytes; `start` indexes the first live byte so each frame
    /// doesn't shift the whole buffer.
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// Wrap a stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::with_capacity(8 * 1024),
            start: 0,
        }
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        // Reclaim space once the dead prefix dominates the buffer.
        if self.start > 8 * 1024 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Read the next message, blocking. `Err(Closed)` on orderly shutdown.
    pub fn read_msg<T: DeserializeOwned>(&mut self) -> Result<T, FrameError> {
        loop {
            if self.buffered().len() >= 4 {
                let len =
                    u32::from_le_bytes(self.buffered()[..4].try_into().expect("4 bytes")) as usize;
                if len > MAX_FRAME {
                    return Err(FrameError::Oversize(len));
                }
                if self.buffered().len() >= 4 + len {
                    let msg = wire::from_bytes(&self.buffered()[4..4 + len])?;
                    self.consume(4 + len);
                    return Ok(msg);
                }
            }
            let mut chunk = [0u8; 8 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(FrameError::Closed);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_msg(&mut s, &("hello".to_string(), 42u32)).unwrap();
            write_msg(&mut s, &vec![1u8, 2, 3]).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = FrameReader::new(conn);
        let (greeting, n): (String, u32) = reader.read_msg().unwrap();
        assert_eq!((greeting.as_str(), n), ("hello", 42));
        let v: Vec<u8> = reader.read_msg().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        // Orderly close surfaces as Closed.
        sender.join().unwrap();
        let end = reader.read_msg::<u8>().unwrap_err();
        assert!(matches!(end, FrameError::Closed));
    }

    #[test]
    fn encoded_frames_match_the_streamed_layout() {
        let msg = ("hello".to_string(), 42u32);
        let mut frame = Vec::new();
        encode_frame_into(&msg, &mut frame).unwrap();
        let payload = wire::to_bytes(&msg).unwrap();
        assert_eq!(&frame[..4], &(payload.len() as u32).to_le_bytes());
        assert_eq!(&frame[4..], &payload[..]);
        // Appending a second frame leaves the first untouched.
        encode_frame_into(&7u8, &mut frame).unwrap();
        assert_eq!(&frame[4..4 + payload.len()], &payload[..]);
    }

    #[test]
    fn oversize_frames_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // A forged oversize length prefix.
            s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
            s.write_all(&[0u8; 16]).unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = FrameReader::new(conn);
        let err = reader.read_msg::<u8>().unwrap_err();
        assert!(matches!(err, FrameError::Oversize(_)));
        sender.join().unwrap();
    }
}

//! Per-client FIFO delivery under the threaded egress fan-out.
//!
//! The replay contract requires that each client observe its messages in
//! the order the server emitted them. `fan_out` writes different clients'
//! messages from parallel scoped workers, so this test hammers it with
//! interleaved multi-client batches over real loopback sockets and asserts
//! that every client reads its own stream back in exact emission order —
//! and that nothing is lost, duplicated, or cross-delivered.

use seve_core::engine::ShareId;
use seve_rt::frame::FrameReader;
use seve_rt::server::{fan_out, RtDown};
use seve_rt::wire::BufferPool;
use seve_world::ids::ClientId;
use std::net::{TcpListener, TcpStream};

const CLIENTS: usize = 4;
const FLUSHES: u32 = 16;
const PER_CLIENT_PER_FLUSH: u32 = 8;

/// Tag a payload with its destination and emission sequence so the reader
/// can verify ordering and ownership from the payload alone.
fn payload(client: u16, seq: u32) -> u64 {
    (u64::from(client) << 32) | u64::from(seq)
}

#[test]
fn fan_out_preserves_per_client_fifo_order() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();

    // Connect one reader socket per client and accept the server ends in
    // connection order.
    let mut reader_handles = Vec::new();
    for c in 0..CLIENTS as u16 {
        let stream = TcpStream::connect(addr).expect("connect");
        reader_handles.push(std::thread::spawn(move || {
            let mut reader = FrameReader::new(stream);
            let mut seen: Vec<u64> = Vec::new();
            for _ in 0..(FLUSHES * PER_CLIENT_PER_FLUSH) {
                match reader.read_msg::<RtDown<u64>>().expect("read frame") {
                    RtDown::Msg(v) => seen.push(v),
                    RtDown::Stop => break,
                }
            }
            (c, seen)
        }));
    }
    let mut writers: Vec<Option<TcpStream>> = Vec::new();
    for _ in 0..CLIENTS {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).expect("nodelay");
        writers.push(Some(stream));
    }

    // Emit interleaved batches: every flush carries messages for all
    // clients, round-robin, so the parallel workers race each other while
    // each client's sequence numbers strictly ascend across flushes.
    let mut seqs = [0u32; CLIENTS];
    let mut total_bytes = 0u64;
    let mut pool = BufferPool::new();
    let exec = seve_exec::Executor::new(4);
    for _ in 0..FLUSHES {
        let mut out: Vec<(ClientId, u64)> = Vec::new();
        for round in 0..PER_CLIENT_PER_FLUSH {
            for c in 0..CLIENTS as u16 {
                // Vary the interleaving pattern between rounds.
                let c = (c + round as u16) % CLIENTS as u16;
                out.push((ClientId(c), payload(c, seqs[c as usize])));
                seqs[c as usize] += 1;
            }
        }
        let (bytes, _batches) =
            fan_out(&mut writers, &out, |_| None, &mut pool, &exec).expect("fan out");
        total_bytes += bytes;
    }
    assert!(total_bytes > 0);
    // Frame buffers recycle across flushes: after warm-up every encode is
    // a pool hit (the steady state allocates nothing).
    assert!(pool.hits() > 0, "expected recycled encode buffers");
    drop(writers); // close the sockets so lagging readers fail loudly

    for h in reader_handles {
        let (c, seen) = h.join().expect("reader thread");
        assert_eq!(
            seen.len(),
            (FLUSHES * PER_CLIENT_PER_FLUSH) as usize,
            "client {c} lost or gained messages"
        );
        for (i, v) in seen.iter().enumerate() {
            assert_eq!(
                *v,
                payload(c, i as u32),
                "client {c} message {i} out of order or misrouted"
            );
        }
    }
}

#[test]
fn fan_out_single_destination_stays_sequential_and_ordered() {
    // The ≤1-destination fast path (the common solicited-reply case) must
    // behave identically.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).expect("connect");
    let (server_end, _) = listener.accept().expect("accept");
    let mut writers = vec![Some(server_end), None, None];

    let out: Vec<(ClientId, u64)> = (0..32u64).map(|i| (ClientId(0), i)).collect();
    let mut pool = BufferPool::new();
    let exec = seve_exec::Executor::new(4);
    fan_out(&mut writers, &out, |_| None, &mut pool, &exec).expect("fan out");
    drop(writers);

    let mut reader = FrameReader::new(client);
    for i in 0..32u64 {
        match reader.read_msg::<RtDown<u64>>().expect("read frame") {
            RtDown::Msg(v) => assert_eq!(v, i),
            RtDown::Stop => panic!("unexpected stop"),
        }
    }
}

#[test]
fn stalled_destination_does_not_block_other_lanes() {
    // The drain queue's mutex must be released before a worker blocks in
    // `write`: one destination that stops reading may occupy only its own
    // worker while every other lane keeps draining. We stall client 2 by
    // not reading it and shipping it far more bytes than loopback socket
    // buffering absorbs, then require clients 0 and 1 to complete while
    // the stalled write is still in flight.
    const STALL_FRAMES: usize = 8;
    const STALL_FRAME_BYTES: usize = 4 * 1024 * 1024;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let mut clients = Vec::new();
    for _ in 0..3 {
        clients.push(TcpStream::connect(addr).expect("connect"));
    }
    let mut writers: Vec<Option<TcpStream>> = Vec::new();
    for _ in 0..3 {
        let (stream, _) = listener.accept().expect("accept");
        writers.push(Some(stream));
    }

    let mut out: Vec<(ClientId, Vec<u8>)> =
        vec![(ClientId(0), vec![0xAA; 64]), (ClientId(1), vec![0xBB; 64])];
    for _ in 0..STALL_FRAMES {
        out.push((ClientId(2), vec![0xCC; STALL_FRAME_BYTES]));
    }

    let writer = std::thread::spawn(move || {
        let mut pool = BufferPool::new();
        // The PR-8 stall-isolation guarantee must hold on the persistent
        // shared pool exactly as it did with per-cycle spawned workers: a
        // pool of ≥3 lanes gives every lane below its own drain task.
        let exec = seve_exec::Executor::new(4);
        let r = fan_out(&mut writers, &out, |_| None, &mut pool, &exec).expect("fan out");
        drop(writers);
        r
    });

    // If a worker still held the queue lock across its blocking write,
    // these reads would starve; the timeout turns that hang into a loud
    // failure instead.
    for (c, byte) in [(0usize, 0xAAu8), (1, 0xBB)] {
        clients[c]
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("set timeout");
        let mut reader = FrameReader::new(clients[c].try_clone().expect("clone"));
        match reader.read_msg::<RtDown<Vec<u8>>>().expect("read frame") {
            RtDown::Msg(v) => assert_eq!(v, vec![byte; 64], "client {c} payload"),
            RtDown::Stop => panic!("unexpected stop"),
        }
    }

    // Only now unstall client 2 and let the fan-out finish.
    let mut reader = FrameReader::new(clients.pop().unwrap());
    for _ in 0..STALL_FRAMES {
        match reader
            .read_msg::<RtDown<Vec<u8>>>()
            .expect("read stalled frame")
        {
            RtDown::Msg(v) => assert_eq!(v.len(), STALL_FRAME_BYTES),
            RtDown::Stop => panic!("unexpected stop"),
        }
    }
    let (bytes, _batches) = writer.join().expect("fan-out thread");
    assert!(bytes as usize > STALL_FRAMES * STALL_FRAME_BYTES);
}

#[test]
fn shared_payloads_encode_once_and_reach_every_client() {
    // Broadcast semantics: N copies of the same logical message, keyed to
    // one ShareId, must produce one encode and N byte-identical frames.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let mut reader_handles = Vec::new();
    for c in 0..CLIENTS as u16 {
        let stream = TcpStream::connect(addr).expect("connect");
        reader_handles.push(std::thread::spawn(move || {
            let mut reader = FrameReader::new(stream);
            let v = match reader.read_msg::<RtDown<u64>>().expect("read frame") {
                RtDown::Msg(v) => v,
                RtDown::Stop => panic!("unexpected stop"),
            };
            (c, v)
        }));
    }
    let mut writers: Vec<Option<TcpStream>> = Vec::new();
    for _ in 0..CLIENTS {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).expect("nodelay");
        writers.push(Some(stream));
    }

    let out: Vec<(ClientId, u64)> = (0..CLIENTS as u16)
        .map(|c| (ClientId(c), 0xFEED_u64))
        .collect();
    let mut pool = BufferPool::new();
    let exec = seve_exec::Executor::new(4);
    fan_out(
        &mut writers,
        &out,
        |_| Some(ShareId::Gc(7)),
        &mut pool,
        &exec,
    )
    .expect("fan out");
    drop(writers);

    // One encode for the whole broadcast: exactly one buffer was drawn
    // from the (empty) pool, and it came back for reuse.
    assert_eq!(pool.misses(), 1, "broadcast should encode exactly once");
    for h in reader_handles {
        let (c, v) = h.join().expect("reader thread");
        assert_eq!(v, 0xFEED, "client {c} got the wrong payload");
    }
}

//! Property-based round-trip tests for the binary wire format over
//! arbitrary protocol payloads.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use seve_rt::wire::{from_bytes, to_bytes};
use seve_world::geometry::Vec2;
use seve_world::ids::{ActionId, AttrId, ClientId, ObjectId};
use seve_world::objset::ObjectSet;
use seve_world::state::{Snapshot, WriteLog};
use seve_world::value::Value;
use seve_world::WorldObject;

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
enum Nested {
    Leaf(u8),
    Pair(i64, bool),
    Labeled { tag: String, inner: Vec<Nested> },
    Nothing,
}

fn nested() -> impl Strategy<Value = Nested> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(Nested::Leaf),
        (any::<i64>(), any::<bool>()).prop_map(|(a, b)| Nested::Pair(a, b)),
        Just(Nested::Nothing),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (".{0,12}", prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, inner)| Nested::Labeled { tag, inner })
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1e9f64..1e9).prop_map(Value::F64),
        any::<i64>().prop_map(Value::I64),
        any::<bool>().prop_map(Value::Bool),
        ((-1e6f64..1e6), (-1e6f64..1e6)).prop_map(|(x, y)| Value::Vec2(Vec2::new(x, y))),
    ]
}

proptest! {
    #[test]
    fn nested_enums_roundtrip(v in nested()) {
        let bytes = to_bytes(&v).unwrap();
        let back: Nested = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn scalar_tuples_roundtrip(
        a in any::<u64>(),
        b in any::<i32>(),
        c in any::<bool>(),
        d in -1e12f64..1e12,
        e in prop::collection::vec(any::<u16>(), 0..32)
    ) {
        let v = (a, b, c, d, e);
        let bytes = to_bytes(&v).unwrap();
        let back: (u64, i32, bool, f64, Vec<u16>) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn write_logs_roundtrip(writes in prop::collection::vec((0u32..100, 0u16..8, value()), 0..40)) {
        let mut log = WriteLog::new();
        for (o, a, v) in writes {
            log.push(ObjectId(o), AttrId(a), v);
        }
        let bytes = to_bytes(&log).unwrap();
        let back: WriteLog = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, log);
    }

    #[test]
    fn snapshots_roundtrip(objs in prop::collection::vec((0u32..50, prop::collection::vec((0u16..6, value()), 0..6)), 0..12)) {
        let mut snap = Snapshot::new();
        for (id, attrs) in objs {
            snap.push(
                ObjectId(id),
                WorldObject::from_attrs(attrs.into_iter().map(|(a, v)| (AttrId(a), v))),
            );
        }
        let bytes = to_bytes(&snap).unwrap();
        let back: Snapshot = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn object_sets_and_ids_roundtrip(ids in prop::collection::vec(0u32..1000, 0..64), c in any::<u16>(), s in any::<u32>()) {
        let set: ObjectSet = ids.iter().map(|&i| ObjectId(i)).collect();
        let back: ObjectSet = from_bytes(&to_bytes(&set).unwrap()).unwrap();
        prop_assert_eq!(back, set);
        let id = ActionId::new(ClientId(c), s);
        let back: ActionId = from_bytes(&to_bytes(&id).unwrap()).unwrap();
        prop_assert_eq!(back, id);
    }

    #[test]
    fn corrupted_length_prefixes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes must either decode or error — never panic.
        let _ = from_bytes::<WriteLog>(&bytes);
        let _ = from_bytes::<Snapshot>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<Nested>(&bytes);
    }
}

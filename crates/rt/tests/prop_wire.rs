//! Property-based round-trip tests for the binary wire format over
//! arbitrary protocol payloads.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use seve_core::msg::{Item, Payload, Shared, ToClient, ToServer};
use seve_rt::wire::{from_bytes, to_bytes, to_bytes_into, BufferPool};
use seve_world::geometry::Vec2;
use seve_world::ids::{ActionId, AttrId, ClientId, ObjectId};
use seve_world::objset::ObjectSet;
use seve_world::state::{Snapshot, WriteLog};
use seve_world::value::Value;
use seve_world::WorldObject;

#[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
enum Nested {
    Leaf(u8),
    Pair(i64, bool),
    Labeled { tag: String, inner: Vec<Nested> },
    Nothing,
}

fn nested() -> impl Strategy<Value = Nested> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(Nested::Leaf),
        (any::<i64>(), any::<bool>()).prop_map(|(a, b)| Nested::Pair(a, b)),
        Just(Nested::Nothing),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (".{0,12}", prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, inner)| Nested::Labeled { tag, inner })
    })
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1e9f64..1e9).prop_map(Value::F64),
        any::<i64>().prop_map(Value::I64),
        any::<bool>().prop_map(Value::Bool),
        ((-1e6f64..1e6), (-1e6f64..1e6)).prop_map(|(x, y)| Value::Vec2(Vec2::new(x, y))),
    ]
}

fn write_log() -> impl Strategy<Value = WriteLog> {
    prop::collection::vec((0u32..100, 0u16..8, value()), 0..16).prop_map(|writes| {
        let mut log = WriteLog::new();
        for (o, a, v) in writes {
            log.push(ObjectId(o), AttrId(a), v);
        }
        log
    })
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    prop::collection::vec(
        (0u32..50, prop::collection::vec((0u16..6, value()), 0..4)),
        0..6,
    )
    .prop_map(|objs| {
        let mut snap = Snapshot::new();
        for (id, attrs) in objs {
            snap.push(
                ObjectId(id),
                WorldObject::from_attrs(attrs.into_iter().map(|(a, v)| (AttrId(a), v))),
            );
        }
        snap
    })
}

/// Arbitrary protocol messages downstream (server → client), with the
/// synthetic recursive `Nested` standing in for the action type.
fn to_client() -> impl Strategy<Value = ToClient<Nested>> {
    let item = prop_oneof![
        (1u64..1000, nested()).prop_map(|(pos, a)| Item {
            pos,
            payload: Payload::Action(Shared::new(a)),
        }),
        (1u64..1000, snapshot()).prop_map(|(pos, s)| Item {
            pos,
            payload: Payload::Blind(Shared::new(s)),
        }),
    ];
    prop_oneof![
        prop::collection::vec(item, 0..6).prop_map(|items| ToClient::Batch {
            items: items.into(),
        }),
        (any::<u16>(), any::<u32>(), 1u64..1000).prop_map(|(c, s, pos)| ToClient::Dropped {
            id: ActionId::new(ClientId(c), s),
            pos,
        }),
        (1u64..1000).prop_map(|pos| ToClient::GcUpTo { pos }),
    ]
}

/// Arbitrary protocol messages upstream (client → server).
fn to_server() -> impl Strategy<Value = ToServer<Nested>> {
    prop_oneof![
        nested().prop_map(|action| ToServer::Submit { action }),
        (
            1u64..1000,
            any::<u16>(),
            any::<u32>(),
            write_log(),
            any::<bool>()
        )
            .prop_map(|(pos, c, s, writes, aborted)| ToServer::Completion {
                pos,
                id: ActionId::new(ClientId(c), s),
                writes,
                aborted,
            }),
    ]
}

proptest! {
    #[test]
    fn nested_enums_roundtrip(v in nested()) {
        let bytes = to_bytes(&v).unwrap();
        let back: Nested = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn scalar_tuples_roundtrip(
        a in any::<u64>(),
        b in any::<i32>(),
        c in any::<bool>(),
        d in -1e12f64..1e12,
        e in prop::collection::vec(any::<u16>(), 0..32)
    ) {
        let v = (a, b, c, d, e);
        let bytes = to_bytes(&v).unwrap();
        let back: (u64, i32, bool, f64, Vec<u16>) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn write_logs_roundtrip(writes in prop::collection::vec((0u32..100, 0u16..8, value()), 0..40)) {
        let mut log = WriteLog::new();
        for (o, a, v) in writes {
            log.push(ObjectId(o), AttrId(a), v);
        }
        let bytes = to_bytes(&log).unwrap();
        let back: WriteLog = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, log);
    }

    #[test]
    fn snapshots_roundtrip(objs in prop::collection::vec((0u32..50, prop::collection::vec((0u16..6, value()), 0..6)), 0..12)) {
        let mut snap = Snapshot::new();
        for (id, attrs) in objs {
            snap.push(
                ObjectId(id),
                WorldObject::from_attrs(attrs.into_iter().map(|(a, v)| (AttrId(a), v))),
            );
        }
        let bytes = to_bytes(&snap).unwrap();
        let back: Snapshot = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn object_sets_and_ids_roundtrip(ids in prop::collection::vec(0u32..1000, 0..64), c in any::<u16>(), s in any::<u32>()) {
        let set: ObjectSet = ids.iter().map(|&i| ObjectId(i)).collect();
        let back: ObjectSet = from_bytes(&to_bytes(&set).unwrap()).unwrap();
        prop_assert_eq!(back, set);
        let id = ActionId::new(ClientId(c), s);
        let back: ActionId = from_bytes(&to_bytes(&id).unwrap()).unwrap();
        prop_assert_eq!(back, id);
    }

    #[test]
    fn corrupted_length_prefixes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes must either decode or error — never panic.
        let _ = from_bytes::<WriteLog>(&bytes);
        let _ = from_bytes::<Snapshot>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<Nested>(&bytes);
    }

    /// Pooled / shared-payload encoding is byte-identical to the
    /// `to_bytes` oracle for arbitrary protocol messages — including over
    /// recycled (previously dirtied) pool buffers, and for `Shared`
    /// payload clones (the broadcast fan-out path encodes the clone).
    #[test]
    fn pooled_encoding_matches_oracle(
        down in prop::collection::vec(to_client(), 1..5),
        up in prop::collection::vec(to_server(), 1..5),
    ) {
        let mut pool = BufferPool::new();
        for msg in &down {
            let oracle = to_bytes(msg).unwrap();
            let mut buf = pool.take();
            to_bytes_into(msg, &mut buf).unwrap();
            prop_assert_eq!(&buf, &oracle, "pooled ToClient encoding diverged");
            pool.put(buf);
            // An Arc-bumped clone is the exact message a shared-payload
            // recipient gets; it must encode to the same bytes.
            let mut buf = pool.take();
            to_bytes_into(&msg.clone(), &mut buf).unwrap();
            prop_assert_eq!(&buf, &oracle, "shared-clone encoding diverged");
            pool.put(buf);
        }
        for msg in &up {
            let oracle = to_bytes(msg).unwrap();
            let mut buf = pool.take();
            to_bytes_into(msg, &mut buf).unwrap();
            prop_assert_eq!(&buf, &oracle, "pooled ToServer encoding diverged");
            pool.put(buf);
        }
        // Every take after the first recycled a dirty buffer.
        prop_assert_eq!(pool.misses(), 1);
    }

    /// The decoder never panics, and a damaged frame — any strict prefix
    /// of a valid encoding, or a valid encoding with trailing garbage —
    /// always surfaces as an error, never as a silently wrong value.
    #[test]
    fn truncated_or_extended_frames_always_error(
        down in to_client(),
        up in to_server(),
        cut in any::<u32>(),
        tail in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let down_bytes = to_bytes(&down).unwrap();
        let up_bytes = to_bytes(&up).unwrap();
        for (bytes, what) in [(&down_bytes, "ToClient"), (&up_bytes, "ToServer")] {
            // Strict prefix: the decoder must come up short.
            let cut = cut as usize % bytes.len();
            let r = if what == "ToClient" {
                from_bytes::<ToClient<Nested>>(&bytes[..cut]).map(|_| ())
            } else {
                from_bytes::<ToServer<Nested>>(&bytes[..cut]).map(|_| ())
            };
            prop_assert!(r.is_err(), "{} decoded from a truncated frame", what);
            // Extension: trailing bytes must be rejected.
            let mut extended = bytes.clone();
            extended.extend_from_slice(&tail);
            let r = if what == "ToClient" {
                from_bytes::<ToClient<Nested>>(&extended).map(|_| ())
            } else {
                from_bytes::<ToServer<Nested>>(&extended).map(|_| ())
            };
            prop_assert!(r.is_err(), "{} decoded with trailing bytes", what);
        }
    }
}

//! End-to-end SEVE session over real TCP loopback: the paper's "real
//! experiments" counterpart. One server thread, four client threads, the
//! Manhattan People workload, and the same Theorem 1 consistency oracle
//! the simulator applies.

use seve_core::config::{ProtocolConfig, ServerMode};
use seve_core::consistency::ConsistencyOracle;
use seve_core::pipeline::PipelineServer;
use seve_rt::{run_client, run_server};
use seve_world::ids::ClientId;
use seve_world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn world(clients: usize) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 200.0,
        height: 200.0,
        walls: 100,
        clients,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        seed: 77,
        ..ManhattanConfig::default()
    }))
}

fn fast_cfg(mode: ServerMode) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::with_mode(mode);
    // Loopback has microsecond RTTs; scale the cycles down so the session
    // finishes quickly while the protocol structure is identical.
    cfg.rtt = seve_net::time::SimDuration::from_ms(20);
    cfg.tick = seve_net::time::SimDuration::from_ms(5);
    cfg
}

fn run_session(mode: ServerMode) {
    const N: usize = 4;
    const MOVES: u32 = 12;
    let w = world(N);
    let cfg = fast_cfg(mode);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();

    let server_world = Arc::clone(&w);
    let server_cfg = cfg.clone();
    let digest = {
        use seve_world::GameWorld;
        w.initial_state().digest()
    };
    let server = std::thread::spawn(move || {
        run_server(
            PipelineServer::new(server_world, server_cfg),
            listener,
            N,
            Duration::from_millis(5),
            Duration::from_millis(5),
            digest,
        )
        .expect("server runs")
    });

    let mut client_handles = Vec::new();
    for i in 0..N {
        let w = Arc::clone(&w);
        let cfg = cfg.clone();
        client_handles.push(std::thread::spawn(move || {
            let mut wl = ManhattanWorkload::new(&w);
            run_client(
                Arc::clone(&w),
                &cfg,
                addr,
                ClientId(i as u16),
                &mut wl,
                MOVES,
                Duration::from_millis(25),
            )
            .expect("client runs")
        }));
    }

    let mut oracle = ConsistencyOracle::new();
    let mut responses = 0usize;
    for h in client_handles {
        let mut report = h.join().expect("client thread");
        responses += report.metrics.response_ms.count();
        assert_eq!(report.metrics.replay_divergences, 0);
        for rec in report.metrics.take_eval_records() {
            oracle.observe(&rec);
        }
    }
    let server_report = server.join().expect("server thread");

    assert!(
        oracle.is_consistent(),
        "Theorem 1 must hold over real sockets: {:?}",
        oracle.violations().first()
    );
    assert!(
        responses >= N * (MOVES as usize) * 9 / 10,
        "most moves must get stable responses, got {responses}"
    );
    assert!(server_report.metrics.installed > 0, "completions installed");
    assert!(server_report.bytes_out > 0);
}

#[test]
fn incomplete_world_over_tcp_is_consistent() {
    run_session(ServerMode::Incomplete);
}

#[test]
fn info_bound_over_tcp_is_consistent() {
    run_session(ServerMode::InfoBound);
}

#[test]
fn wire_roundtrips_a_real_move_action() {
    let w = world(3);
    let mut wl = ManhattanWorkload::new(&w);
    use seve_world::worlds::Workload;
    use seve_world::GameWorld;
    let action = wl
        .next_action(ClientId(1), 0, &w.initial_state(), 0)
        .expect("move");
    let bytes = seve_rt::wire::to_bytes(&action).unwrap();
    let back: <ManhattanWorld as GameWorld>::Action = seve_rt::wire::from_bytes(&bytes).unwrap();
    assert_eq!(format!("{action:?}"), format!("{back:?}"));
}

//! A simulated machine (re-exported from the driver layer, which owns the
//! compute model shared by every backend).

pub use seve_driver::machine::Machine;

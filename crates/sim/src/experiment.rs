//! The paper's evaluation, experiment by experiment (Section V).
//!
//! Each function regenerates one table or figure as a [`Figure`] of
//! series. Two scales: [`Scale::Quick`] for tests and smoke runs (fewer
//! sweep points and moves, fixed-cost moves), [`Scale::Full`] for the
//! paper-fidelity reproduction used by the `repro` binary and recorded in
//! `EXPERIMENTS.md`.
//!
//! | Experiment | Function | Paper claim reproduced |
//! |---|---|---|
//! | Table I | [`table1`] | simulation settings |
//! | Fig 6 | [`fig6`] | Central & Broadcast collapse ≈30–32 clients; SEVE flat |
//! | Fig 7 | [`fig7`] | Central/Broadcast unusable >10 ms/action; SEVE flat |
//! | Fig 8 | [`fig8`] | naive SEVE bogs down >35 visible; dropping stays stable |
//! | Fig 9 | [`fig9`] | Broadcast traffic quadratic; SEVE ≈ Central ≈ optimal |
//! | Fig 10 | [`fig10`] | SEVE ≈ RING response (+≈1%); RING inconsistent |
//! | Table II | [`table2`] | % moves dropped vs move effect range |
//! | In-text | [`server_capacity`] | ≈3500 clients on one server |

use crate::harness::{RunResult, SimConfig, Simulation};
use crate::report::{Figure, Series};
use seve_baselines::{BroadcastSuite, CentralSuite, RingSuite};
use seve_core::config::{ProtocolConfig, ServerMode};
use seve_core::server::SeveSuite;
use seve_world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use seve_world::GameWorld;
use std::sync::Arc;

/// Experiment fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Few sweep points, short runs, fixed per-move cost — seconds, for
    /// tests.
    Quick,
    /// The paper's parameters (Table I) — for the `repro` binary.
    Full,
}

impl Scale {
    fn moves(self) -> u32 {
        match self {
            Scale::Quick => 30,
            Scale::Full => 100,
        }
    }

    fn walls(self) -> usize {
        match self {
            // Quick keeps the calibrated 7.44 ms cost via an override, so
            // wall count only shapes collisions.
            Scale::Quick => 2_000,
            Scale::Full => 100_000,
        }
    }

    fn cost_override(self) -> Option<u64> {
        match self {
            Scale::Quick => Some(7_440),
            Scale::Full => None,
        }
    }
}

/// The Table I Manhattan People world at a given client count.
pub fn paper_world(clients: usize, scale: Scale) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients,
        walls: scale.walls(),
        cost_override_us: scale.cost_override(),
        ..ManhattanConfig::default()
    }))
}

/// The Table I network/workload settings.
pub fn paper_sim(scale: Scale) -> SimConfig {
    SimConfig {
        moves_per_client: scale.moves(),
        ..SimConfig::default()
    }
}

/// The SEVE protocol config used throughout the evaluation.
pub fn paper_protocol(mode: ServerMode) -> ProtocolConfig {
    ProtocolConfig::with_mode(mode)
}

/// Run SEVE (or a variant) on a Manhattan world.
pub fn run_seve(
    world: &Arc<ManhattanWorld>,
    mode: ServerMode,
    proto: ProtocolConfig,
    sim: &SimConfig,
) -> RunResult {
    let suite = SeveSuite::new(ProtocolConfig { mode, ..proto });
    let mut wl = ManhattanWorkload::new(world);
    Simulation::new(Arc::clone(world), &suite, sim.clone()).run(&mut wl)
}

/// Run the Central baseline on a Manhattan world.
pub fn run_central(world: &Arc<ManhattanWorld>, sim: &SimConfig) -> RunResult {
    let suite = CentralSuite::with_interest_radius(world.config().visibility);
    let mut wl = ManhattanWorkload::new(world);
    Simulation::new(Arc::clone(world), &suite, sim.clone()).run(&mut wl)
}

/// Run the Broadcast baseline on a Manhattan world.
pub fn run_broadcast(world: &Arc<ManhattanWorld>, sim: &SimConfig) -> RunResult {
    let suite = BroadcastSuite::default();
    let mut wl = ManhattanWorkload::new(world);
    Simulation::new(Arc::clone(world), &suite, sim.clone()).run(&mut wl)
}

/// Run the RING-like baseline on a Manhattan world.
pub fn run_ring(world: &Arc<ManhattanWorld>, sim: &SimConfig) -> RunResult {
    let suite = RingSuite::new(world.config().visibility);
    let mut wl = ManhattanWorkload::new(world);
    Simulation::new(Arc::clone(world), &suite, sim.clone()).run(&mut wl)
}

/// Table I — the simulation settings, as key/value rows.
pub fn table1() -> Vec<(&'static str, String)> {
    let m = ManhattanConfig::default();
    let p = ProtocolConfig::default();
    let s = SimConfig::default();
    vec![
        ("Virtual world size", format!("{} x {}", m.width, m.height)),
        ("Number of walls", format!("0 - {}", m.walls)),
        ("Number of clients", "0 - 64".to_string()),
        (
            "Average latency (RTT)",
            format!("{:.0}ms", p.rtt.as_ms_f64()),
        ),
        (
            "Maximum bandwidth",
            format!("{}Kbps", s.bandwidth_bps.map(|b| b / 1000).unwrap_or(0)),
        ),
        ("Moves per client", s.moves_per_client.to_string()),
        (
            "Move generation rate",
            format!("Every {:.0}ms per client", s.move_period.as_ms_f64()),
        ),
        ("Move effect range", format!("{}units", m.move_effect_range)),
        ("Avatar visibility", format!("{}units", m.visibility)),
        (
            "Threshold",
            format!("1.5 x Avatar visibility = {}units", p.threshold),
        ),
    ]
}

fn client_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![8, 24, 48, 64],
        Scale::Full => vec![4, 8, 16, 24, 32, 40, 48, 56, 64],
    }
}

/// The Figure 6 / Figure 9 sweep: every protocol at every client count.
/// Returns `(protocol label, clients, result)` tuples; [`fig6`] and
/// [`fig9`] read different columns of the same runs.
pub fn scalability_sweep(scale: Scale) -> Vec<(String, usize, RunResult)> {
    let mut out = Vec::new();
    for &n in &client_counts(scale) {
        let world = paper_world(n, scale);
        let sim = paper_sim(scale);
        out.push(("Central".to_string(), n, run_central(&world, &sim)));
        out.push((
            "SEVE".to_string(),
            n,
            run_seve(
                &world,
                ServerMode::InfoBound,
                paper_protocol(ServerMode::InfoBound),
                &sim,
            ),
        ));
        out.push(("Broadcast".to_string(), n, run_broadcast(&world, &sim)));
    }
    out
}

fn series_from_sweep(
    sweep: &[(String, usize, RunResult)],
    labels: &[&str],
    y: impl Fn(&RunResult) -> f64,
) -> Vec<Series> {
    labels
        .iter()
        .map(|&label| {
            let points = sweep
                .iter()
                .filter(|(l, _, _)| l == label)
                .map(|(_, n, r)| (*n as f64, y(r)))
                .collect();
            Series::new(label, points)
        })
        .collect()
}

/// Figure 6 — response time vs number of clients.
pub fn fig6(scale: Scale) -> Figure {
    let sweep = scalability_sweep(scale);
    fig6_from_sweep(&sweep)
}

/// Figure 6 from an existing sweep (lets the repro binary share runs with
/// Figure 9).
pub fn fig6_from_sweep(sweep: &[(String, usize, RunResult)]) -> Figure {
    Figure {
        id: "fig6".into(),
        title: "Scalability of SEVE vs Central architecture".into(),
        x_label: "clients".into(),
        y_label: "mean response time (ms)".into(),
        series: series_from_sweep(sweep, &["Central", "SEVE", "Broadcast"], |r| {
            r.response_ms.mean()
        }),
        notes: vec![
            "paper: Central and Broadcast break down at ~30-32 clients; SEVE stays flat".into(),
        ],
    }
}

/// Figure 9 — total data transfer vs number of clients.
pub fn fig9(scale: Scale) -> Figure {
    let sweep = scalability_sweep(scale);
    fig9_from_sweep(&sweep)
}

/// Figure 9 from an existing sweep.
pub fn fig9_from_sweep(sweep: &[(String, usize, RunResult)]) -> Figure {
    Figure {
        id: "fig9".into(),
        title: "Total data transfer".into(),
        x_label: "clients".into(),
        y_label: "total transfer (kB)".into(),
        series: series_from_sweep(sweep, &["Central", "SEVE", "Broadcast"], RunResult::total_kb),
        notes: vec![
            "paper: Broadcast is quadratic in clients; SEVE does not differ significantly from Central".into(),
        ],
    }
}

/// Figure 7 — response time vs per-action complexity (25 clients).
pub fn fig7(scale: Scale) -> Figure {
    let costs_ms: Vec<u64> = match scale {
        Scale::Quick => vec![2, 8, 14, 20],
        Scale::Full => vec![1, 4, 7, 10, 13, 16, 19, 22, 25],
    };
    let mut central = Vec::new();
    let mut seve = Vec::new();
    let mut bcast = Vec::new();
    for &ms in &costs_ms {
        let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
            clients: 25,
            walls: scale.walls().min(2_000),
            cost_override_us: Some(ms * 1_000),
            ..ManhattanConfig::default()
        }));
        let sim = paper_sim(scale);
        central.push((ms as f64, run_central(&world, &sim).response_ms.mean()));
        seve.push((
            ms as f64,
            run_seve(
                &world,
                ServerMode::InfoBound,
                paper_protocol(ServerMode::InfoBound),
                &sim,
            )
            .response_ms
            .mean(),
        ));
        bcast.push((ms as f64, run_broadcast(&world, &sim).response_ms.mean()));
    }
    Figure {
        id: "fig7".into(),
        title: "Response Time vs Action Complexity".into(),
        x_label: "per-action cost (ms)".into(),
        y_label: "mean response time (ms)".into(),
        series: vec![
            Series::new("Central", central),
            Series::new("SEVE", seve),
            Series::new("Broadcast", bcast),
        ],
        notes: vec![
            "paper: Central/Broadcast fine below 10 ms per move, then unusable; SEVE unaffected"
                .into(),
        ],
    }
}

/// The Figure 8 / Table II dense-crowd world: 60 avatars in a 250×250
/// area (Section V-B.1). `spacing` sets the crowd density; the paper packed
/// avatars 4 units apart and let them disperse over an hour — we sweep the
/// (post-dispersal) density directly and keep motion slow so it persists.
pub fn dense_world(
    visibility: f64,
    effect_range: f64,
    spacing: f64,
    _scale: Scale,
) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 250.0,
        height: 250.0,
        walls: 0,
        clients: 60,
        visibility,
        move_effect_range: effect_range,
        speed: 2.0,
        spawn: SpawnPattern::Grid { spacing },
        // The density experiments probe the marginal compute regime the
        // paper describes ("the clients ran out of computational power");
        // a fixed 5 ms per move puts 60 clients × 1 move / 300 ms exactly
        // at one machine's capacity.
        cost_override_us: Some(5_000),
        ..ManhattanConfig::default()
    }))
}

/// The protocol configuration for the dense-crowd experiments: the pushed
/// set is the client's visibility sphere (the reading under which the
/// paper's Figure 8 x-axis — "avatars visible" — is the delivered set),
/// and the chain-breaking threshold is 3× the move effect range.
pub fn dense_protocol(mode: ServerMode, visibility: f64, effect_range: f64) -> ProtocolConfig {
    let mut proto = paper_protocol(mode);
    proto.interest_radius_override = Some(visibility);
    proto.threshold = 3.0 * effect_range;
    proto
}

/// Figure 8 — response time vs avatar density, SEVE with and without move
/// dropping. Density is swept via crowd spacing at the Table I visibility
/// of 30 units; the x-axis is the measured average number of visible
/// avatars, as in the paper.
pub fn fig8(scale: Scale) -> Figure {
    let spacings: Vec<f64> = match scale {
        Scale::Quick => vec![16.0, 8.0, 6.0],
        Scale::Full => vec![20.0, 16.0, 13.0, 11.0, 9.0, 8.0, 7.0, 6.0, 5.0],
    };
    let vis = 30.0;
    let range = 6.0;
    let mut with_drop = Vec::new();
    let mut without_drop = Vec::new();
    let mut drops = Vec::new();
    for &spacing in &spacings {
        let world = dense_world(vis, range, spacing, scale);
        let visible = world.avg_visible(&world.initial_state(), vis);
        let sim = SimConfig {
            moves_per_client: scale.moves().max(60),
            ..SimConfig::default()
        };
        let proto = dense_protocol(ServerMode::InfoBound, vis, range);
        let r_drop = run_seve(&world, ServerMode::InfoBound, proto.clone(), &sim);
        let r_naive = run_seve(&world, ServerMode::FirstBound, proto, &sim);
        with_drop.push((visible, r_drop.response_ms.mean()));
        without_drop.push((visible, r_naive.response_ms.mean()));
        drops.push(format!(
            "spacing {spacing}: avg visible {visible:.2}, dropped {:.2}%",
            r_drop.drop_percent()
        ));
    }
    Figure {
        id: "fig8".into(),
        title: "Effect of increasing density of avatars".into(),
        x_label: "avatars visible (avg)".into(),
        y_label: "mean response time (ms)".into(),
        series: vec![
            Series::new("SEVE (without move dropping)", without_drop),
            Series::new("SEVE (with move dropping)", with_drop),
        ],
        notes: drops
            .into_iter()
            .chain(std::iter::once(
                "paper: naive SEVE bogs down beyond ~35 visible avatars; dropping keeps it stable (1.5-7.5% drops)".into(),
            ))
            .collect(),
    }
}

/// Table II — percentage of moves dropped vs move effect range
/// (visibility 20 units; the paper's extreme-density "worst case").
pub fn table2(scale: Scale) -> Figure {
    let ranges: Vec<f64> = match scale {
        Scale::Quick => vec![1.0, 7.0, 11.0],
        Scale::Full => vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0],
    };
    let vis = 20.0;
    let mut points = Vec::new();
    for &range in &ranges {
        let world = dense_world(vis, range, 9.5, scale);
        let sim = SimConfig {
            moves_per_client: scale.moves().max(60),
            ..SimConfig::default()
        };
        // Table I fixes the threshold at 1.5 × visibility for this world.
        let mut proto = dense_protocol(ServerMode::InfoBound, vis, range);
        proto.threshold = 1.5 * vis;
        let r = run_seve(&world, ServerMode::InfoBound, proto, &sim);
        points.push((range, r.drop_percent()));
    }
    Figure {
        id: "table2".into(),
        title: "Percentage of moves dropped (visibility = 20 units)".into(),
        x_label: "move effect range".into(),
        y_label: "% moves dropped".into(),
        series: vec![Series::new("% dropped", points)],
        notes: vec!["paper: 1 -> 0, 3 -> 0, 5 -> 0.01, 7 -> 1.53, 9 -> 4.03, 11 -> 8.87".into()],
    }
}

/// Figure 10 — SEVE vs a RING-like architecture at higher density, plus
/// the consistency measurements the paper's Section III-B argument implies.
pub fn fig10(scale: Scale) -> Figure {
    let counts: Vec<usize> = match scale {
        Scale::Quick => vec![20, 40],
        Scale::Full => vec![20, 30, 40, 50, 60],
    };
    let mut seve = Vec::new();
    let mut ring = Vec::new();
    let mut notes = Vec::new();
    for &n in &counts {
        // Denser clusters: the paper raised average visible avatars to
        // 14.01 for this comparison.
        let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
            clients: n,
            walls: scale.walls(),
            cost_override_us: scale.cost_override().or(None),
            spawn: SpawnPattern::Clustered {
                cluster_size: 16,
                cluster_radius: 18.0,
            },
            ..ManhattanConfig::default()
        }));
        let sim = paper_sim(scale);
        let r_seve = run_seve(
            &world,
            ServerMode::InfoBound,
            paper_protocol(ServerMode::InfoBound),
            &sim,
        );
        let r_ring = run_ring(&world, &sim);
        seve.push((n as f64, r_seve.response_ms.mean()));
        ring.push((n as f64, r_ring.response_ms.mean()));
        notes.push(format!(
            "{n} clients: SEVE violations {} / {} evals; RING violations {} / {} evals",
            r_seve.violations, r_seve.evals_checked, r_ring.violations, r_ring.evals_checked
        ));
        if r_ring.server_compute_us > 0 && n == *counts.last().unwrap() {
            // The paper's "1% runtime overhead" claim concerns the server's
            // closure computation, not end-to-end latency (which also pays
            // the Algorithm 7 tick).
            notes.push(format!(
                "server compute at {n} clients: SEVE {} µs vs RING {} µs ({:+.2}%)",
                r_seve.server_compute_us,
                r_ring.server_compute_us,
                100.0 * (r_seve.server_compute_us as f64 - r_ring.server_compute_us as f64)
                    / r_ring.server_compute_us as f64
            ));
        }
    }
    // Overhead summary at the largest point.
    if let (Some(&(_, ys)), Some(&(_, yr))) = (seve.last(), ring.last()) {
        if yr > 0.0 {
            notes.push(format!(
                "SEVE response overhead over RING at max clients: {:+.2}%",
                100.0 * (ys - yr) / yr
            ));
        }
    }
    Figure {
        id: "fig10".into(),
        title: "SEVE vs RING-like Architecture".into(),
        x_label: "clients".into(),
        y_label: "mean response time (ms)".into(),
        series: vec![Series::new("SEVE", seve), Series::new("RING", ring)],
        notes,
    }
}

/// The in-text server-capacity estimate: "we performed experiments on a
/// single server and determined the limit of our implementation to be
/// about 3500 clients."
///
/// Measures the server compute consumed per client-second at Table I load
/// and extrapolates to 100% utilization.
pub fn server_capacity(scale: Scale) -> (f64, RunResult) {
    let world = paper_world(64, scale);
    let sim = paper_sim(scale);
    let r = run_seve(
        &world,
        ServerMode::InfoBound,
        paper_protocol(ServerMode::InfoBound),
        &sim,
    );
    let capacity = if r.server_utilization > 0.0 {
        64.0 / r.server_utilization
    } else {
        f64::INFINITY
    };
    (capacity, r)
}

/// Ablation: sweep ω, the push-period fraction (Section III-D). Smaller ω
/// means more frequent pushes — lower response, more server work and
/// traffic; the response bound (1+ω)·RTT moves with it.
pub fn ablation_omega(scale: Scale) -> Figure {
    let omegas = match scale {
        Scale::Quick => vec![0.1, 0.5],
        Scale::Full => vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.95],
    };
    let mut response = Vec::new();
    let mut bound = Vec::new();
    let mut notes = Vec::new();
    for &omega in &omegas {
        let world = paper_world(32, scale);
        let sim = paper_sim(scale);
        let mut proto = paper_protocol(ServerMode::InfoBound);
        proto.omega = omega;
        let r = run_seve(&world, ServerMode::InfoBound, proto.clone(), &sim);
        response.push((omega, r.response_ms.mean()));
        bound.push((omega, proto.response_bound_ms()));
        notes.push(format!(
            "omega {omega}: transfer {:.0} kB, server compute {} ms",
            r.total_kb(),
            r.server_compute_us / 1000
        ));
    }
    Figure {
        id: "ablation-omega".into(),
        title: "Push period ω vs response (32 clients)".into(),
        x_label: "omega".into(),
        y_label: "ms".into(),
        series: vec![
            Series::new("measured mean response", response),
            Series::new("(1+omega)*RTT bound", bound),
        ],
        notes,
    }
}

/// Ablation: sweep the Algorithm 7 chain-breaking threshold at fixed high
/// density. Tight thresholds drop aggressively and keep response low;
/// loose thresholds approach the no-dropping collapse.
pub fn ablation_threshold(scale: Scale) -> Figure {
    let thresholds = match scale {
        Scale::Quick => vec![12.0, 45.0],
        Scale::Full => vec![10.0, 15.0, 20.0, 30.0, 45.0, 70.0, 120.0],
    };
    let mut response = Vec::new();
    let mut drops = Vec::new();
    for &thr in &thresholds {
        let world = dense_world(30.0, 6.0, 6.0, scale);
        let sim = SimConfig {
            moves_per_client: scale.moves().max(60),
            ..SimConfig::default()
        };
        let mut proto = dense_protocol(ServerMode::InfoBound, 30.0, 6.0);
        proto.threshold = thr;
        let r = run_seve(&world, ServerMode::InfoBound, proto, &sim);
        response.push((thr, r.response_ms.mean()));
        drops.push((thr, r.drop_percent()));
    }
    Figure {
        id: "ablation-threshold".into(),
        title: "Chain-breaking threshold vs response and drops (dense crowd)".into(),
        x_label: "threshold (units)".into(),
        y_label: "ms / %".into(),
        series: vec![
            Series::new("mean response (ms)", response),
            Series::new("% dropped", drops),
        ],
        notes: vec!["no-drop reference: the same crowd collapses past ~2 s".into()],
    }
}

/// Ablation: the Section IV optimizations' traffic effect on a combat
/// world with ambient insects and flying arrows.
pub fn ablation_optimizations(scale: Scale) -> Figure {
    use seve_world::worlds::combat::{CombatConfig, CombatWorkload, CombatWorld};
    let moves = match scale {
        Scale::Quick => 20,
        Scale::Full => 60,
    };
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 32,
        insect_fraction: 0.375,
        ..CombatConfig::default()
    }));
    let sim = SimConfig {
        moves_per_client: moves,
        ..SimConfig::default()
    };
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (i, (label, interest, culling)) in [
        ("baseline", false, false),
        ("interest filtering", true, false),
        ("velocity culling", false, true),
        ("both", true, true),
    ]
    .into_iter()
    .enumerate()
    {
        let mut proto = paper_protocol(ServerMode::InfoBound);
        proto.interest_filtering = interest;
        proto.velocity_culling = culling;
        let suite = SeveSuite::new(proto);
        let mut wl = CombatWorkload::new(Arc::clone(&world));
        let r = Simulation::new(Arc::clone(&world), &suite, sim.clone()).run(&mut wl);
        assert_eq!(r.violations, 0, "optimizations must preserve Theorem 1");
        series.push((i as f64, r.total_kb()));
        notes.push(format!(
            "{label}: {:.0} kB, mean response {:.1} ms, violations {}",
            r.total_kb(),
            r.response_ms.mean(),
            r.violations
        ));
    }
    Figure {
        id: "ablation-optimizations".into(),
        title: "Section IV optimizations: total transfer (32-client combat, 37% insects)".into(),
        x_label: "0=base 1=interest 2=culling 3=both".into(),
        y_label: "total transfer (kB)".into(),
        series: vec![Series::new("kB", series)],
        notes,
    }
}

/// Extra experiment (quantifying Figure 2's argument): RING's consistency
/// violations as a function of its visibility radius. Bigger visibility
/// means fewer missed causal dependencies — but even generous radii leak,
/// because influence is semantic, not geometric.
pub fn ring_inconsistency(scale: Scale) -> Figure {
    use seve_world::worlds::combat::{CombatConfig, CombatWorkload, CombatWorld};
    let radii: Vec<f64> = match scale {
        Scale::Quick => vec![40.0, 120.0],
        Scale::Full => vec![30.0, 50.0, 80.0, 120.0, 200.0, 400.0],
    };
    let moves = match scale {
        Scale::Quick => 20,
        Scale::Full => 60,
    };
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 24,
        scry_range: 250.0,
        ..CombatConfig::default()
    }));
    let sim = SimConfig {
        moves_per_client: moves,
        ..SimConfig::default()
    };
    let mut points = Vec::new();
    let mut notes = Vec::new();
    for &r in &radii {
        let suite = seve_baselines::RingSuite::new(r);
        let mut wl = CombatWorkload::new(Arc::clone(&world));
        let run =
            crate::harness::Simulation::new(Arc::clone(&world), &suite, sim.clone()).run(&mut wl);
        let pct = if run.evals_checked > 0 {
            100.0 * run.violations as f64 / run.evals_checked as f64
        } else {
            0.0
        };
        points.push((r, pct));
        notes.push(format!(
            "visibility {r}: {} violations / {} evals, response {:.1} ms",
            run.violations,
            run.evals_checked,
            run.response_ms.mean()
        ));
    }
    // The SEVE reference at the same density: zero, by construction.
    let suite = SeveSuite::new(paper_protocol(ServerMode::InfoBound));
    let mut wl = CombatWorkload::new(Arc::clone(&world));
    let seve = crate::harness::Simulation::new(Arc::clone(&world), &suite, sim).run(&mut wl);
    notes.push(format!(
        "SEVE reference: {} violations / {} evals",
        seve.violations, seve.evals_checked
    ));
    Figure {
        id: "ring-inconsistency".into(),
        title: "RING divergence vs visibility radius (24-client combat, scry range 250)".into(),
        x_label: "visibility radius".into(),
        y_label: "% evaluations diverged".into(),
        series: vec![Series::new("RING", points)],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = table1();
        let get = |k: &str| {
            rows.iter()
                .find(|(rk, _)| *rk == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("Virtual world size"), "1000 x 1000");
        assert_eq!(get("Average latency (RTT)"), "238ms");
        assert_eq!(get("Maximum bandwidth"), "100Kbps");
        assert_eq!(get("Move effect range"), "10units");
        assert_eq!(get("Avatar visibility"), "30units");
        assert!(get("Threshold").contains("45"));
    }

    #[test]
    fn dense_world_is_dense() {
        let w = dense_world(20.0, 10.0, 4.0, Scale::Quick);
        let visible = w.avg_visible(&w.initial_state(), 20.0);
        assert!(visible > 10.0, "crowd must be dense, got {visible}");
    }
}

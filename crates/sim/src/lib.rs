//! # seve-sim — the EMULab-substitute experiment harness
//!
//! The paper evaluated SEVE on a 65-machine EMULab testbed (Section V-A):
//! 64 clients + 1 server, Pentium-III nodes, 238 ms average latency,
//! 100 Kbps links, one move per client per 300 ms, runs averaged over 10
//! repetitions. This crate reproduces that testbed as a deterministic
//! discrete-event simulation:
//!
//! * [`machine`] — a simulated machine with a busy-time compute model; the
//!   per-action costs come from the world's calibrated cost model (e.g.
//!   7.44 ms per Manhattan People move at 100 000 walls).
//! * [`harness`] — the event loop wiring one server and N clients over
//!   latency/bandwidth [`seve_net::link::Link`]s, driving workload move
//!   timers, server ticks (τ) and push cycles (ω·RTT), and collecting every
//!   metric the paper reports. The loop itself lives in
//!   [`seve_driver::sim`] (the discrete-event substrate of the unified
//!   node driver); this crate re-exports it under the historical paths.
//! * [`experiment`] — the parameter sets behind Table I and each figure.
//! * [`report`] — plain-text table/series rendering for the `repro` binary.
//!
//! Determinism: all randomness is seeded, events tie-break FIFO, and the
//! compute model is virtual — so every run is exactly reproducible,
//! machine-independent, and ~10⁴× faster than real time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod harness;
pub mod machine;
pub mod report;

pub use harness::{RunResult, SimConfig, Simulation};
pub use machine::Machine;

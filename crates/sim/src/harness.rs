//! The experiment harness: one server + N clients over simulated links.
//!
//! The event loop itself now lives in the driver layer
//! ([`seve_driver::sim`]) as the discrete-event substrate of the unified
//! node driver — same scheduling, bit for bit, plus optional fault
//! injection via [`seve_driver::Simulation::with_faults`]. This module
//! re-exports it under the harness's historical paths so experiment code
//! and the golden-equivalence suite keep reading naturally.

pub use seve_driver::sim::{AveragedResult, RunResult, SimConfig, Simulation};
// The event-queue selector SimConfig now carries (timer wheel by default,
// binary heap as the drain-order oracle), so experiment code can flip
// backends without importing from the net crate.
pub use seve_net::event::EventQueueKind;

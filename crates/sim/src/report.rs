//! Plain-text rendering of experiment output: figures as aligned series
//! tables, plus key/value tables (Table I) — the format the `repro`
//! binary prints and `EXPERIMENTS.md` records.

use std::fmt::Write as _;

/// One plotted line: a label and `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label ("Central", "SEVE", ...).
    pub label: String,
    /// Points in ascending x.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x, if sampled.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A reproduced table or figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier ("fig6", "table2", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Meaning of x.
    pub x_label: String,
    /// Meaning of y.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Free-form observations (drop counts, violation counts, ...).
    pub notes: Vec<String>,
}

impl Figure {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        // Collect the union of x values, ascending.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut header = format!("{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>14}", s.label);
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for x in xs {
            let _ = write!(out, "{x:>14.2}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>14.2}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "    (y: {})", self.y_label);
        for n in &self.notes {
            let _ = writeln!(out, "    note: {n}");
        }
        out
    }
}

// The stage-profile and replay-work renderers moved to the driver layer
// (they are printed by every backend's binaries, not just the simulator);
// re-exported here so `seve_sim::report` callers keep working.
pub use seve_driver::report::{render_replay_work, render_stage_profile};

/// Render a key/value settings table (Table I style).
pub fn render_settings(title: &str, rows: &[(&str, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<key_w$}  {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        Figure {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "clients".into(),
            y_label: "ms".into(),
            series: vec![
                Series::new("A", vec![(1.0, 10.0), (2.0, 20.0)]),
                Series::new("B", vec![(1.0, 11.0)]),
            ],
            notes: vec!["hello".into()],
        }
    }

    #[test]
    fn series_lookup() {
        let f = fig();
        assert_eq!(f.series("A").unwrap().y_at(2.0), Some(20.0));
        assert_eq!(f.series("B").unwrap().y_at(2.0), None);
        assert!(f.series("C").is_none());
    }

    #[test]
    fn render_includes_all_points_and_gaps() {
        let text = fig().render();
        assert!(text.contains("figX"));
        assert!(text.contains("20.00"));
        assert!(text.contains('-'), "missing sample rendered as a dash");
        assert!(text.contains("note: hello"));
    }

    #[test]
    fn settings_alignment() {
        let s = render_settings("Table I", &[("Virtual world size", "1000 x 1000".into())]);
        assert!(s.contains("Table I"));
        assert!(s.contains("1000 x 1000"));
    }
}

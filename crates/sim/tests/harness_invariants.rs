//! Cross-cutting invariants of the experiment harness, checked over real
//! runs of several protocol suites.

use seve_baselines::{BroadcastSuite, CentralSuite, RingSuite};
use seve_core::config::{ProtocolConfig, ServerMode};
use seve_core::engine::ProtocolSuite;
use seve_core::server::SeveSuite;
use seve_sim::{RunResult, SimConfig, Simulation};
use seve_world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use std::sync::Arc;

fn world() -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 10,
        walls: 200,
        width: 300.0,
        height: 300.0,
        spawn: SpawnPattern::Grid { spacing: 12.0 },
        cost_override_us: Some(1_000),
        ..ManhattanConfig::default()
    }))
}

fn run<P: ProtocolSuite<ManhattanWorld>>(suite: &P) -> RunResult {
    let w = world();
    let mut wl = ManhattanWorkload::new(&w);
    let sim = SimConfig {
        moves_per_client: 15,
        ..SimConfig::default()
    };
    Simulation::new(w, suite, sim).run(&mut wl)
}

fn check_invariants(name: &str, r: &RunResult) {
    // Accounting identities.
    assert_eq!(
        r.total_bytes,
        r.server_up_bytes + r.server_down_bytes,
        "{name}: byte totals must decompose"
    );
    assert_eq!(r.submitted, 150, "{name}: 10 clients × 15 moves");
    assert!(
        r.response_ms.count() as u64 + r.dropped <= r.submitted,
        "{name}: responses + drops cannot exceed submissions"
    );
    // Virtual time covers at least the move phase.
    assert!(
        r.duration.as_secs_f64() >= 15.0 * 0.3,
        "{name}: run shorter than the move phase"
    );
    // Compute totals are plausible: at least one evaluation's worth, and
    // utilization is a fraction.
    assert!((0.0..=1.0).contains(&r.server_utilization), "{name}");
    // Response times can never beat the physics: one-way latency is
    // 119 ms, and every protocol needs at least one round trip.
    assert!(
        r.response_ms.min() >= 238.0 || r.response_ms.is_empty(),
        "{name}: response {} beat the speed of light",
        r.response_ms.min()
    );
}

#[test]
fn accounting_invariants_hold_for_every_suite() {
    check_invariants(
        "seve",
        &run(&SeveSuite::new(ProtocolConfig::with_mode(
            ServerMode::InfoBound,
        ))),
    );
    check_invariants(
        "basic",
        &run(&SeveSuite::new(ProtocolConfig::with_mode(
            ServerMode::Basic,
        ))),
    );
    check_invariants("central", &run(&CentralSuite::with_interest_radius(30.0)));
    check_invariants("broadcast", &run(&BroadcastSuite::default()));
    check_invariants("ring", &run(&RingSuite::new(30.0)));
}

#[test]
fn nearly_all_submissions_get_responses_after_drain() {
    let r = run(&SeveSuite::new(ProtocolConfig::with_mode(
        ServerMode::InfoBound,
    )));
    let resolved = r.response_ms.count() as u64 + r.dropped;
    assert!(
        resolved * 100 >= r.submitted * 95,
        "only {resolved} of {} submissions resolved",
        r.submitted
    );
}

#[test]
fn moves_per_client_zero_is_a_clean_noop() {
    let w = world();
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let mut wl = ManhattanWorkload::new(&w);
    let sim = SimConfig {
        moves_per_client: 0,
        ..SimConfig::default()
    };
    let r = Simulation::new(w, &suite, sim).run(&mut wl);
    assert_eq!(r.submitted, 0);
    assert_eq!(r.violations, 0);
    assert_eq!(r.response_ms.count(), 0);
}

#[test]
fn single_client_worlds_work() {
    let w = Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 1,
        walls: 50,
        width: 100.0,
        height: 100.0,
        spawn: SpawnPattern::Uniform,
        cost_override_us: Some(500),
        ..ManhattanConfig::default()
    }));
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let mut wl = ManhattanWorkload::new(&w);
    let sim = SimConfig {
        moves_per_client: 10,
        ..SimConfig::default()
    };
    let r = Simulation::new(w, &suite, sim).run(&mut wl);
    assert_eq!(r.submitted, 10);
    assert_eq!(r.violations, 0);
    assert_eq!(r.response_ms.count(), 10);
}

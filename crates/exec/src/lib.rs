//! Persistent work-stealing executor for SEVE's per-tick parallelism.
//!
//! Before this crate, every parallel hot path in the server (Algorithm 7
//! batch analysis, push candidate selection, egress drain) spawned fresh
//! OS threads each tick or push cycle, paying spawn/join latency thousands
//! of times per run — enough to turn the analyze stage's parallel path
//! into a net *slowdown* at 1024+ clients. An [`Executor`] amortizes that
//! cost into one long-lived pool:
//!
//! - `width - 1` worker threads live for the executor's lifetime; the
//!   *calling* thread is the remaining lane and executes tasks while it
//!   waits, so a batch of `width` tasks runs on `width` lanes with zero
//!   spawns. `width == 1` means no threads at all — tasks run inline on
//!   the caller, the true sequential path.
//! - Each worker owns a deque fed round-robin at submission; overflow
//!   spills to a shared injector. Idle workers first drain their own
//!   deque, then the injector, then steal from siblings' tails, so an
//!   uneven batch cannot strand work behind one slow lane.
//! - Idle workers park on a condvar and are woken by submissions; a
//!   bounded timed wait backstops any missed wakeup.
//! - **Determinism:** results are returned in submission order, whatever
//!   order tasks actually executed in. Callers that need bit-identical
//!   output across pool sizes get it by construction, as long as the
//!   tasks themselves are pure over their inputs.
//! - **Panic containment:** a panicking task marks its batch failed
//!   ([`BatchPanic`]) but still releases the batch latch; the pool itself
//!   keeps working and later batches are unaffected.
//!
//! The crate also hosts [`AdaptiveGate`]: the self-tuning replacement for
//! the static "parallelize above N items" constants, estimating per-item
//! sequential cost and parallel dispatch overhead from the site's own
//! measured history (see the struct docs for the math).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A type-erased, lifetime-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`Executor::run`] when at least one task in the
/// batch panicked. The batch's other tasks still ran to completion and
/// the pool remains fully usable — only this batch's results are lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPanic;

impl std::fmt::Display for BatchPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a task in the batch panicked")
    }
}

impl std::error::Error for BatchPanic {}

/// Monotonic counters describing everything the pool has executed.
/// Wall-clock diagnostics only — never fed back into protocol decisions,
/// so protocol outcomes stay independent of pool size and scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tasks executed (worker- and caller-executed alike).
    pub tasks: u64,
    /// Tasks taken from a queue other than the taker's own — work the
    /// stealing mechanism actually moved between lanes.
    pub steals: u64,
    /// Summed wall-clock nanoseconds spent inside tasks across all lanes.
    pub busy_nanos: u64,
    /// High-water mark of jobs queued and not yet picked up.
    pub queue_hwm: u64,
}

/// Lock without poisoning: a panic inside a task is already contained by
/// `catch_unwind`, and none of the pool's internal critical sections can
/// panic, so a poisoned mutex only ever means "some unrelated thread
/// panicked while we held nothing" — recover the guard and continue.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// State shared between the submitting thread and the workers.
struct Shared {
    /// Per-worker deques: slot `w` is worker `w`'s own queue (absent for
    /// `width == 1`, which has no workers).
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue any lane may feed from; the caller's "own" queue.
    injector: Mutex<VecDeque<Job>>,
    /// Jobs queued and not yet taken. Incremented *before* the jobs are
    /// pushed so a concurrent take can never underflow it; parked workers
    /// re-check it under the sleep lock, so no wakeup is lost.
    pending: AtomicUsize,
    /// Parking lot for idle workers.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
    queue_hwm: AtomicU64,
}

impl Shared {
    /// Execute one job, charging the busy/task counters.
    fn exec_job(&self, job: Job) {
        let t0 = Instant::now();
        job();
        self.busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    /// Take the next job for worker `w`: own deque first, then the
    /// injector, then steal from a sibling's tail.
    fn take_for_worker(&self, w: usize) -> Option<Job> {
        if let Some(job) = lock(&self.deques[w]).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            self.steals.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
        for (i, d) in self.deques.iter().enumerate() {
            if i == w {
                continue;
            }
            if let Some(job) = lock(d).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Take the next job for the calling thread: the injector is its own
    /// queue; worker deques are steal targets.
    fn take_for_caller(&self) -> Option<Job> {
        if let Some(job) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for d in &self.deques {
            if let Some(job) = lock(d).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }
}

/// Worker main loop: drain jobs, then park until the next submission.
fn worker_loop(shared: &Shared, w: usize) {
    loop {
        if let Some(job) = shared.take_for_worker(w) {
            shared.exec_job(job);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = lock(&shared.sleep);
        // Re-check under the sleep lock: submitters bump `pending` and
        // notify while holding it, so either we see the new jobs here or
        // the notification reaches our wait. The timed wait is a backstop
        // only; correctness never depends on it firing.
        if shared.pending.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            let _ = shared.wake.wait_timeout(guard, Duration::from_millis(250));
        }
    }
}

/// Outcome latch for one [`Executor::run`] batch: per-task result slots
/// (submission-indexed), a countdown of unfinished tasks, and a panic
/// flag. The condvar fires when the countdown reaches zero.
struct BatchInner<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
    panicked: bool,
}

/// A persistent pool of `width - 1` worker threads plus the caller's
/// lane. See the crate docs for the scheduling and determinism contract.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    width: usize,
}

impl Executor {
    /// Build a pool offering `width` parallel lanes (minimum 1). Spawns
    /// `width - 1` OS threads; `width == 1` spawns none and [`run`]
    /// executes inline.
    ///
    /// [`run`]: Executor::run
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let workers = width - 1;
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("seve-exec-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn executor worker")
            })
            .collect();
        Self {
            shared,
            handles,
            width,
        }
    }

    /// Number of parallel lanes (worker threads + the calling thread).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            busy_nanos: self.shared.busy_nanos.load(Ordering::Relaxed),
            queue_hwm: self.shared.queue_hwm.load(Ordering::Relaxed),
        }
    }

    /// Run a batch of tasks to completion, returning their results **in
    /// submission order**. The calling thread executes queued tasks while
    /// it waits, so the batch proceeds even on a width-1 pool. Returns
    /// [`BatchPanic`] if any task panicked; the remaining tasks still ran
    /// and the pool stays usable.
    ///
    /// Tasks may borrow from the caller's stack (`'env`): `run` does not
    /// return until every task has finished, which is what makes the
    /// internal lifetime erasure sound.
    pub fn run<'env, T: Send + 'env>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
    ) -> Result<Vec<T>, BatchPanic> {
        let n = tasks.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        if self.width == 1 {
            // Sequential fast path: no queues, no latch — but identical
            // semantics, including panic containment and stats.
            let mut out = Vec::with_capacity(n);
            let mut panicked = false;
            for task in tasks {
                let t0 = Instant::now();
                match catch_unwind(AssertUnwindSafe(task)) {
                    Ok(v) => out.push(v),
                    Err(_) => panicked = true,
                }
                self.shared
                    .busy_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.shared.tasks.fetch_add(1, Ordering::Relaxed);
            }
            return if panicked { Err(BatchPanic) } else { Ok(out) };
        }

        let batch = Arc::new((
            Mutex::new(BatchInner::<T> {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
                panicked: false,
            }),
            Condvar::new(),
        ));

        // Publish the batch size before any job becomes visible so a
        // concurrent take can never drive `pending` below zero.
        let queued = self.shared.pending.fetch_add(n, Ordering::AcqRel) + n;
        self.shared
            .queue_hwm
            .fetch_max(queued as u64, Ordering::Relaxed);

        let workers = self.width - 1;
        for (i, task) in tasks.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                let (inner, done) = &*batch;
                let mut inner = lock(inner);
                match result {
                    Ok(v) => inner.slots[i] = Some(v),
                    Err(_) => inner.panicked = true,
                }
                inner.remaining -= 1;
                if inner.remaining == 0 {
                    done.notify_all();
                }
            });
            // SAFETY: the job borrows only data outliving `'env`, and
            // `run` blocks below until `remaining == 0` — the wrapper
            // decrements that latch on every exit path, panic included —
            // so no job can run after `run` returns and the borrows it
            // captures are live for as long as it can execute.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            // Round-robin the first `2 × workers` jobs across the worker
            // deques (for the common one-task-per-lane batch this is a
            // perfect spread); spill the rest to the injector for whoever
            // frees up first.
            if i < workers * 2 {
                lock(&self.shared.deques[i % workers]).push_back(job);
            } else {
                lock(&self.shared.injector).push_back(job);
            }
        }
        {
            // Notify under the sleep lock so a worker between its
            // `pending` check and its wait cannot miss the wakeup.
            let _g = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }

        // Caller's lane: execute queued jobs (this batch's or not) while
        // the latch is up; between jobs, nap on the batch condvar. The
        // short timed wait re-polls the queues, covering the window where
        // a job was queued after our last take attempt but its owner is
        // busy elsewhere.
        let (inner_mutex, done) = &*batch;
        loop {
            if let Some(job) = self.shared.take_for_caller() {
                self.shared.exec_job(job);
                continue;
            }
            let mut inner = lock(inner_mutex);
            if inner.remaining == 0 {
                break;
            }
            let (g, _) = done
                .wait_timeout(inner, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = g;
            if inner.remaining == 0 {
                break;
            }
        }

        let mut inner = lock(inner_mutex);
        if inner.panicked {
            return Err(BatchPanic);
        }
        let out = inner
            .slots
            .iter_mut()
            .map(|s| s.take().expect("latch down, every slot filled"))
            .collect();
        Ok(out)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Resolve the pool width the same way the analyze stage resolves its
/// thread budget: an explicit config value wins, then the
/// `SEVE_EXEC_THREADS` environment variable, then the machine's available
/// parallelism capped at 8. Always at least 1.
pub fn resolve_width(cfg: Option<usize>) -> usize {
    cfg.or_else(|| {
        std::env::var("SEVE_EXEC_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(8)
    })
    .max(1)
}

/// Self-tuning "parallelize above N items" gate.
///
/// The static constants this replaces encoded a one-time guess about the
/// break-even batch size. The gate instead estimates it from the site's
/// own measurements: an EWMA of the **sequential per-item cost** `s`
/// (ns/item, updated from sequential wall time and from parallel workers'
/// summed busy time) and an EWMA of the **parallel dispatch overhead**
/// `o` (ns/batch: parallel wall time minus the ideal `busy / width`).
/// Parallel execution of `n` items wins when `n·s/width + o < n·s`, i.e.
///
/// ```text
/// n > o / (s · (1 − 1/width))
/// ```
///
/// which is the threshold returned once both estimates are warm, clamped
/// to `[seed/4, seed×16]` so one noisy sample can never push the gate to
/// a pathological extreme. Until warm — and whenever adaptation is off or
/// the pool has a single lane — the static seed applies unchanged. An
/// environment pin (e.g. `SEVE_PAR_MIN_ACTIONS`) overrides everything,
/// letting tests and experiments fix the gate exactly.
///
/// All state is atomic (`f64` bits in `AtomicU64`) so recording works
/// through `&self`; EWMA updates are read-blend-store and may rarely drop
/// a concurrent sample, which is harmless for a smoothed diagnostic.
pub struct AdaptiveGate {
    seed: usize,
    pin: Option<usize>,
    lo: usize,
    hi: usize,
    seq_item_ns: AtomicU64,
    overhead_ns: AtomicU64,
}

/// EWMA smoothing factor: new samples carry 20% weight.
const EWMA_ALPHA: f64 = 0.2;

/// Blend `x` into the EWMA stored as `f64` bits in `cell` (0 bits =
/// unset: the first sample seeds the average).
fn ewma_update(cell: &AtomicU64, x: f64) {
    let old = f64::from_bits(cell.load(Ordering::Relaxed));
    let new = if old > 0.0 {
        old * (1.0 - EWMA_ALPHA) + x * EWMA_ALPHA
    } else {
        x
    };
    cell.store(new.to_bits(), Ordering::Relaxed);
}

impl AdaptiveGate {
    /// A gate seeded with the site's historical static constant, pinnable
    /// via the `pin_env` environment variable.
    pub fn new(seed: usize, pin_env: &str) -> Self {
        let pin = std::env::var(pin_env).ok().and_then(|v| v.parse().ok());
        Self {
            seed,
            pin,
            lo: (seed / 4).max(1),
            hi: seed.saturating_mul(16),
            seq_item_ns: AtomicU64::new(0),
            overhead_ns: AtomicU64::new(0),
        }
    }

    /// The static seed threshold.
    pub fn seed(&self) -> usize {
        self.seed
    }

    /// Is the gate pinned by its environment variable?
    pub fn pinned(&self) -> bool {
        self.pin.is_some()
    }

    /// Current "parallelize at or above this many items" threshold for a
    /// pool of `width` lanes. `adaptive` off (config switch) falls back
    /// to the seed; a pin overrides everything.
    pub fn threshold(&self, width: usize, adaptive: bool) -> usize {
        if let Some(p) = self.pin {
            return p;
        }
        if !adaptive || width <= 1 {
            return self.seed;
        }
        let s = f64::from_bits(self.seq_item_ns.load(Ordering::Relaxed));
        let o = f64::from_bits(self.overhead_ns.load(Ordering::Relaxed));
        if s <= 0.0 || o <= 0.0 {
            return self.seed;
        }
        let gain = 1.0 - 1.0 / width as f64;
        let n = (o / (s * gain)).ceil();
        (n as usize).clamp(self.lo, self.hi)
    }

    /// Record a sequential run of `n` items taking `wall_ns`.
    pub fn record_seq(&self, n: usize, wall_ns: u64) {
        if n == 0 {
            return;
        }
        ewma_update(&self.seq_item_ns, wall_ns as f64 / n as f64);
    }

    /// Record a parallel run of `n` items: `wall_ns` end-to-end on the
    /// calling thread, `busy_ns` summed across workers (≈ the sequential
    /// work the batch contained), on `width` lanes.
    pub fn record_par(&self, n: usize, wall_ns: u64, busy_ns: u64, width: usize) {
        if n == 0 || width <= 1 {
            return;
        }
        ewma_update(&self.seq_item_ns, busy_ns as f64 / n as f64);
        let ideal = busy_ns as f64 / width as f64;
        // Floor at 1 ns so a lucky sample still marks the estimate warm.
        ewma_update(&self.overhead_ns, (wall_ns as f64 - ideal).max(1.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Box a closure as a batch task (inference helper for tests).
    fn task<T: Send>(f: impl FnOnce() -> T + Send + 'static) -> Box<dyn FnOnce() -> T + Send> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Executor::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                task(move || {
                    // Vary runtimes so execution order scrambles.
                    if i % 7 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    i * i
                })
            })
            .collect();
        let out = pool.run(tasks).expect("batch");
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_results_across_pool_widths() {
        let compute = |w: usize| {
            let pool = Executor::new(w);
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..40u64)
                .map(|i| task(move || i.wrapping_mul(0x9E37_79B9).rotate_left(7)))
                .collect();
            pool.run(tasks).expect("batch")
        };
        let base = compute(1);
        assert_eq!(base, compute(2));
        assert_eq!(base, compute(8));
    }

    #[test]
    fn width_one_executes_inline_without_threads() {
        let pool = Executor::new(1);
        let caller = std::thread::current().id();
        let out = pool
            .run(vec![
                task(move || std::thread::current().id() == caller),
                task(move || std::thread::current().id() == caller),
            ])
            .expect("batch");
        assert_eq!(out, vec![true, true]);
        assert_eq!(pool.stats().tasks, 2);
    }

    #[test]
    fn tasks_may_borrow_from_the_callers_stack() {
        let pool = Executor::new(3);
        let data: Vec<u64> = (0..100).collect();
        let chunks: Vec<&[u64]> = data.chunks(13).collect();
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = chunks
            .into_iter()
            .map(|c| {
                let b: Box<dyn FnOnce() -> u64 + Send + '_> =
                    Box::new(move || c.iter().sum::<u64>());
                b
            })
            .collect();
        let out = pool.run(tasks).expect("batch");
        assert_eq!(out.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn pool_stays_live_across_idle_gaps() {
        // Park/unpark: workers go idle between batches and must wake for
        // the next one. A lost wakeup hangs this test (harness timeout
        // turns that into a failure); the elapsed bound catches the
        // degenerate always-spinning or timed-poll-only implementations.
        let pool = Executor::new(2);
        for round in 0..3 {
            std::thread::sleep(Duration::from_millis(60));
            let t0 = Instant::now();
            let out = pool
                .run((0..8).map(|i| task(move || i + round)).collect())
                .expect("batch");
            assert_eq!(out.len(), 8);
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "batch after idle gap took {:?}",
                t0.elapsed()
            );
        }
    }

    #[test]
    fn panicking_task_fails_its_batch_without_poisoning_the_pool() {
        let pool = Executor::new(3);
        let ran = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..6)
            .map(|i| {
                let ran = Arc::clone(&ran);
                task(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    assert!(i != 3, "task 3 detonates");
                    i
                })
            })
            .collect();
        assert_eq!(pool.run(tasks), Err(BatchPanic));
        // Every non-panicking task still ran (latch released by all).
        assert_eq!(ran.load(Ordering::Relaxed), 6);
        // The pool is not poisoned: the next batch succeeds.
        let out = pool
            .run((0..4).map(|i| task(move || i * 10)).collect())
            .expect("pool survives a panicked batch");
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn width_one_contains_panics_too() {
        let pool = Executor::new(1);
        assert_eq!(
            pool.run(vec![task(|| panic!("boom")), task(|| ())]),
            Err(BatchPanic)
        );
        assert!(pool.run(vec![task(|| 1u8)]).is_ok());
    }

    #[test]
    fn stats_count_tasks_and_queue_high_water() {
        let pool = Executor::new(4);
        for _ in 0..5 {
            pool.run((0..16).map(|i| task(move || i)).collect::<Vec<_>>())
                .expect("batch");
        }
        let s = pool.stats();
        assert_eq!(s.tasks, 80);
        assert!(s.queue_hwm >= 1);
        assert!(s.busy_nanos > 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = Executor::new(2);
        let out: Vec<u8> = pool.run(Vec::new()).expect("empty batch");
        assert!(out.is_empty());
        assert_eq!(pool.stats().tasks, 0);
    }

    #[test]
    fn resolve_width_prefers_config() {
        assert_eq!(resolve_width(Some(3)), 3);
        assert_eq!(resolve_width(Some(0)), 1); // floor
    }

    #[test]
    fn gate_returns_seed_until_warm() {
        let g = AdaptiveGate::new(64, "SEVE_TEST_UNSET_PIN_1");
        assert_eq!(g.threshold(4, true), 64);
        g.record_seq(100, 100_000); // seq estimate alone is not enough
        assert_eq!(g.threshold(4, true), 64);
    }

    #[test]
    fn gate_is_static_for_single_lane_or_disabled() {
        let g = AdaptiveGate::new(64, "SEVE_TEST_UNSET_PIN_2");
        g.record_par(1000, 1_000_000, 3_000_000, 4);
        assert_eq!(g.threshold(1, true), 64, "one lane: no parallel win");
        assert_eq!(g.threshold(4, false), 64, "adaptation disabled");
    }

    #[test]
    fn gate_tracks_measured_break_even() {
        let g = AdaptiveGate::new(64, "SEVE_TEST_UNSET_PIN_3");
        // 1000 ns/item sequential; parallel overhead 30 µs on 4 lanes:
        // n* = 30_000 / (1000 × 0.75) = 40.
        for _ in 0..50 {
            g.record_seq(100, 100_000);
            g.record_par(100, 55_000, 100_000, 4);
        }
        let t = g.threshold(4, true);
        assert!((38..=42).contains(&t), "threshold {t} not near 40");
        // Cheap items push the break-even up, clamped at seed×16.
        for _ in 0..200 {
            g.record_seq(100, 100); // 1 ns/item
        }
        assert_eq!(g.threshold(4, true), 64 * 16);
    }

    #[test]
    fn gate_clamps_to_floor() {
        let g = AdaptiveGate::new(64, "SEVE_TEST_UNSET_PIN_4");
        // Huge items, tiny overhead: break-even below 1, clamped to 16.
        for _ in 0..50 {
            g.record_par(10, 2_500_001, 10_000_000, 4);
        }
        assert_eq!(g.threshold(4, true), 16);
    }

    #[test]
    fn gate_env_pin_overrides_everything() {
        std::env::set_var("SEVE_TEST_PIN_OVERRIDE", "7");
        let g = AdaptiveGate::new(64, "SEVE_TEST_PIN_OVERRIDE");
        assert!(g.pinned());
        g.record_par(1000, 1, 100_000_000, 8);
        assert_eq!(g.threshold(8, true), 7);
        assert_eq!(g.threshold(1, false), 7);
        std::env::remove_var("SEVE_TEST_PIN_OVERRIDE");
    }
}

//! In-repo substitute for serde's derive macros.
//!
//! Parses the item at the `TokenTree` level (no `syn`/`quote`, which are
//! unavailable offline) and emits `Serialize`/`Deserialize` impls matching
//! upstream serde's data-model calls for the shapes this workspace uses:
//! named/tuple/unit structs and enums with unit/newtype/tuple/struct
//! variants, with plain type parameters. `#[serde(...)]` attributes are not
//! supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The attribute body: `[...]`.
                iter.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` / `pub(in ...)`.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(iter: &mut Tokens, what: &str) -> String {
    match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Parse `<...>` after the item name (the `<` is already consumed),
/// returning the type parameter names. Lifetimes and bounds are skipped.
fn parse_generics(iter: &mut Tokens) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut expecting_name = true;
    let mut skip_next_ident = false;
    for tree in iter.by_ref() {
        match tree {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ',' if depth == 1 => expecting_name = true,
                ':' if depth == 1 => expecting_name = false,
                '\'' => skip_next_ident = true,
                _ => {}
            },
            TokenTree::Ident(i) => {
                if skip_next_ident {
                    skip_next_ident = false;
                } else if expecting_name && depth == 1 {
                    let name = i.to_string();
                    if name == "const" {
                        panic!("serde_derive: const generics are not supported");
                    }
                    params.push(name);
                    expecting_name = false;
                }
            }
            _ => {}
        }
    }
    params
}

/// Parse the `name: Type` list of a braced field group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
        // `:` then the type, up to a top-level `,`.
        iter.next();
        let mut depth = 0usize;
        let mut last_char = ' ';
        for tree in iter.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' if last_char != '-' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
                last_char = p.as_char();
            } else {
                last_char = ' ';
            }
        }
    }
    fields
}

/// Count the top-level comma-separated fields of a parenthesised group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_nonempty = false;
    let mut depth = 0usize;
    let mut last_char = ' ';
    let mut iter = stream.into_iter().peekable();
    loop {
        let Some(tree) = iter.next() else { break };
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => depth += 1,
                '>' if last_char != '-' => depth -= 1,
                ',' if depth == 0 => {
                    if segment_nonempty {
                        count += 1;
                    }
                    segment_nonempty = false;
                    last_char = ' ';
                    continue;
                }
                _ => {}
            }
            last_char = p.as_char();
        } else {
            last_char = ' ';
        }
        // Visibility and attributes don't make a segment a field on their
        // own, but any type token does.
        segment_nonempty = true;
    }
    if segment_nonempty {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant`, then the trailing comma.
        for tree in iter.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kw = expect_ident(&mut iter, "`struct` or `enum`");
    let name = expect_ident(&mut iter, "item name");
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            generics = parse_generics(&mut iter);
        }
    }
    let body = match kw.as_str() {
        "struct" => {
            // Scan past a potential `where` clause to the defining group or
            // the terminating `;` of a unit/tuple struct.
            let mut shape = Shape::Unit;
            for tree in iter.by_ref() {
                match tree {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        shape = Shape::Tuple(count_tuple_fields(g.stream()));
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        shape = Shape::Named(parse_named_fields(g.stream()));
                        break;
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => break,
                    _ => {}
                }
            }
            Body::Struct(shape)
        }
        "enum" => {
            let mut variants = Vec::new();
            for tree in iter.by_ref() {
                if let TokenTree::Group(g) = tree {
                    if g.delimiter() == Delimiter::Brace {
                        variants = parse_variants(g.stream());
                        break;
                    }
                }
            }
            Body::Enum(variants)
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        generics,
        body,
    }
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

impl Item {
    /// `Foo` or `Foo<A, B>`.
    fn self_ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    /// `impl` generics with the given bound applied to every type param,
    /// plus optional extra params (e.g. `'de`) up front.
    fn impl_generics(&self, extra: &str, bound: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !extra.is_empty() {
            parts.push(extra.to_string());
        }
        for g in &self.generics {
            parts.push(format!("{g}: {bound}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }

    /// The visitor struct definition + the phantom type used in it.
    fn visitor_parts(&self) -> (String, String) {
        if self.generics.is_empty() {
            (String::new(), "()".to_string())
        } else {
            (
                format!("<{}>", self.generics.join(", ")),
                format!("({},)", self.generics.join(", ")),
            )
        }
    }
}

/// The `visit_seq` body reading `n` elements and building `ctor(...)` /
/// `ctor { ... }` from them.
fn visit_seq_fields(bindings: &[String], ctor: &str) -> String {
    let mut out = String::new();
    for b in bindings {
        out.push_str(&format!(
            "let {b} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__v) => __v,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             <__SA::Error as ::serde::de::Error>::custom(\"missing field\")),\n\
             }};\n"
        ));
    }
    out.push_str(&format!("::core::result::Result::Ok({ctor})\n"));
    out
}

fn numbered(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i}")).collect()
}

fn quoted_list(items: &[String]) -> String {
    items
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let impl_generics = item.impl_generics("", "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(Shape::Unit) => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Body::Struct(Shape::Tuple(1)) => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Body::Struct(Shape::Tuple(n)) => {
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {n}usize)?;\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{i})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            s
        }
        Body::Struct(Shape::Named(fields)) => {
            let n = fields.len();
            let mut s = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {n}usize)?;\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(__st)");
            s
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (k, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                         __serializer, \"{name}\", {k}u32, \"{vname}\"),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {k}u32, \"{vname}\", __f0),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds = numbered("__f", *n).join(", ");
                        let mut s = format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __sv = ::serde::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {k}u32, \"{vname}\", {n}usize)?;\n"
                        );
                        for b in numbered("__f", *n) {
                            s.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __sv, {b})?;\n"
                            ));
                        }
                        s.push_str("::serde::ser::SerializeTupleVariant::end(__sv)\n},\n");
                        arms.push_str(&s);
                    }
                    Shape::Named(fields) => {
                        let n = fields.len();
                        let binds = fields.join(", ");
                        let mut s = format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {k}u32, \"{vname}\", {n}usize)?;\n"
                        );
                        for f in fields {
                            s.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(\
                                 &mut __sv, \"{f}\", {f})?;\n"
                            ));
                        }
                        s.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                        arms.push_str(&s);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(non_snake_case, unused_mut, unused_variables, clippy::all)]\n\
         impl{impl_generics} ::serde::Serialize for {self_ty} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// A nested visitor (for tuple/struct payloads) producing `value_ty` by
/// reading `bindings` as a sequence and building `ctor`.
fn gen_seq_visitor(item: &Item, visitor_name: &str, bindings: &[String], ctor: &str) -> String {
    let value_ty = item.self_ty();
    let de_impl_generics = item.impl_generics("'de", "::serde::de::Deserialize<'de>");
    let (visitor_generics, phantom_ty) = item.visitor_parts();
    let seq_body = visit_seq_fields(bindings, ctor);
    format!(
        "struct {visitor_name}{visitor_generics} {{\n\
         __p: ::core::marker::PhantomData<{phantom_ty}>,\n\
         }}\n\
         impl{de_impl_generics} ::serde::de::Visitor<'de> for {visitor_name}{visitor_generics} {{\n\
         type Value = {value_ty};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str(\"derived value\")\n\
         }}\n\
         fn visit_seq<__SA: ::serde::de::SeqAccess<'de>>(self, mut __seq: __SA)\n\
         -> ::core::result::Result<Self::Value, __SA::Error> {{\n\
         {seq_body}\
         }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let self_ty = item.self_ty();
    let de_impl_generics = item.impl_generics("'de", "::serde::de::Deserialize<'de>");
    let (visitor_generics, phantom_ty) = item.visitor_parts();
    let phantom_expr = "::core::marker::PhantomData";

    let body = match &item.body {
        Body::Struct(Shape::Unit) => {
            let visitor = format!(
                "struct __Visitor{visitor_generics} {{ __p: ::core::marker::PhantomData<{phantom_ty}> }}\n\
                 impl{de_impl_generics} ::serde::de::Visitor<'de> for __Visitor{visitor_generics} {{\n\
                 type Value = {self_ty};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"unit struct {name}\")\n\
                 }}\n\
                 fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                 ::core::result::Result::Ok({name})\n\
                 }}\n\
                 }}\n"
            );
            format!(
                "{visitor}\
                 ::serde::de::Deserializer::deserialize_unit_struct(\
                 __deserializer, \"{name}\", __Visitor {{ __p: {phantom_expr} }})"
            )
        }
        Body::Struct(Shape::Tuple(1)) => {
            let visitor = format!(
                "struct __Visitor{visitor_generics} {{ __p: ::core::marker::PhantomData<{phantom_ty}> }}\n\
                 impl{de_impl_generics} ::serde::de::Visitor<'de> for __Visitor{visitor_generics} {{\n\
                 type Value = {self_ty};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"newtype struct {name}\")\n\
                 }}\n\
                 fn visit_newtype_struct<__D: ::serde::de::Deserializer<'de>>(self, __d: __D)\n\
                 -> ::core::result::Result<Self::Value, __D::Error> {{\n\
                 ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                 }}\n\
                 }}\n"
            );
            format!(
                "{visitor}\
                 ::serde::de::Deserializer::deserialize_newtype_struct(\
                 __deserializer, \"{name}\", __Visitor {{ __p: {phantom_expr} }})"
            )
        }
        Body::Struct(Shape::Tuple(n)) => {
            let bindings = numbered("__f", *n);
            let ctor = format!("{name}({})", bindings.join(", "));
            let visitor = gen_seq_visitor(item, "__Visitor", &bindings, &ctor);
            format!(
                "{visitor}\
                 ::serde::de::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {n}usize, __Visitor {{ __p: {phantom_expr} }})"
            )
        }
        Body::Struct(Shape::Named(fields)) => {
            let ctor = format!("{name} {{ {} }}", fields.join(", "));
            let visitor = gen_seq_visitor(item, "__Visitor", fields, &ctor);
            let field_names = quoted_list(fields);
            format!(
                "{visitor}\
                 ::serde::de::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{field_names}], __Visitor {{ __p: {phantom_expr} }})"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (k, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{k}u32 => {{\n\
                         ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                         ::core::result::Result::Ok({name}::{vname})\n\
                         }},\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{k}u32 => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let bindings = numbered("__f", *n);
                        let ctor = format!("{name}::{vname}({})", bindings.join(", "));
                        let nested_name = format!("__Variant{k}Visitor");
                        let nested = gen_seq_visitor(item, &nested_name, &bindings, &ctor);
                        arms.push_str(&format!(
                            "{k}u32 => {{\n\
                             {nested}\
                             ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {n}usize, {nested_name} {{ __p: {phantom_expr} }})\n\
                             }},\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = format!("{name}::{vname} {{ {} }}", fields.join(", "));
                        let nested_name = format!("__Variant{k}Visitor");
                        let nested = gen_seq_visitor(item, &nested_name, fields, &ctor);
                        let field_names = quoted_list(fields);
                        arms.push_str(&format!(
                            "{k}u32 => {{\n\
                             {nested}\
                             ::serde::de::VariantAccess::struct_variant(\
                             __variant, &[{field_names}], {nested_name} {{ __p: {phantom_expr} }})\n\
                             }},\n"
                        ));
                    }
                }
            }
            let variant_names =
                quoted_list(&variants.iter().map(|v| v.name.clone()).collect::<Vec<_>>());
            let visitor = format!(
                "struct __Visitor{visitor_generics} {{ __p: ::core::marker::PhantomData<{phantom_ty}> }}\n\
                 impl{de_impl_generics} ::serde::de::Visitor<'de> for __Visitor{visitor_generics} {{\n\
                 type Value = {self_ty};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"enum {name}\")\n\
                 }}\n\
                 fn visit_enum<__EA: ::serde::de::EnumAccess<'de>>(self, __access: __EA)\n\
                 -> ::core::result::Result<Self::Value, __EA::Error> {{\n\
                 let (__idx, __variant): (u32, __EA::Variant) =\n\
                 ::serde::de::EnumAccess::variant(__access)?;\n\
                 match __idx {{\n\
                 {arms}\
                 _ => ::core::result::Result::Err(\
                 <__EA::Error as ::serde::de::Error>::custom(\"invalid variant index\")),\n\
                 }}\n\
                 }}\n\
                 }}\n"
            );
            format!(
                "{visitor}\
                 ::serde::de::Deserializer::deserialize_enum(\
                 __deserializer, \"{name}\", &[{variant_names}], __Visitor {{ __p: {phantom_expr} }})"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(non_snake_case, unused_mut, unused_variables, clippy::all)]\n\
         impl{de_impl_generics} ::serde::de::Deserialize<'de> for {self_ty} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

//! In-repo substitute for the `rand` API surface this workspace uses.
//!
//! The build environment has no registry access, so this crate provides
//! `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods the
//! workspace calls (`gen_range` over integer/float ranges, `gen_bool`).
//! The generator is splitmix64 — deterministic and statistically fine for
//! simulation workloads, but NOT the upstream implementation: streams
//! differ from real `rand 0.8`, and it is not cryptographically secure.

use std::ops::Range;

/// Concrete RNG types.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

impl StdRng {
    fn splitmix_next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut rng = StdRng { state: seed };
        // Burn one output so seed 0 doesn't start at state 0.
        let _ = rng.splitmix_next();
        rng
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_int_range {
    ($($ty:ty),*) => {
        $(impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        })*
    };
}

sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_float_range {
    ($($ty:ty),*) => {
        $(impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $ty
            }
        })*
    };
}

sample_float_range!(f32, f64);

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        f64::standard_sample(rng) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_sample_int {
    ($($ty:ty),*) => {
        $(impl StandardSample for $ty {
            fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

standard_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draw from the standard distribution (unit interval for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.splitmix_next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.gen_range(-50i64..-3);
            assert!((-50..-3).contains(&i));
        }
    }
}

//! In-repo substitute for the `criterion` API surface this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! minimal timing harness with criterion's call shape: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, and the `criterion_group!`/`criterion_main!` macros.
//! It reports a simple mean per benchmark instead of criterion's full
//! statistical analysis, and ignores sample-size tuning beyond bounding the
//! number of timed iterations.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The harness times routine
/// invocations individually either way, so the variants only exist for
/// call-site compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one parameterized benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to benchmark closures; runs and times the workload.
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.timed = self.iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.timed = self.iters;
    }
}

fn run_benchmark(name: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        total: Duration::ZERO,
        timed: 0,
    };
    f(&mut b);
    if b.timed > 0 {
        let mean = b.total.as_secs_f64() / b.timed as f64;
        println!("bench {name:<50} {:>12.3} µs/iter", mean * 1e6);
    } else {
        println!("bench {name:<50} (no measurement)");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Bound the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.iters, f);
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F)
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.name), self.iters, |b| {
            f(b, input)
        });
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 10, f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: 10,
            _parent: self,
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

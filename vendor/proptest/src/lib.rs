//! In-repo substitute for the `proptest` API surface this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! small deterministic property-testing harness with the same surface the
//! workspace's `prop_*` test files call: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_shuffle`/`prop_recursive`/`boxed`,
//! strategies for ranges, tuples, `Vec<S>`, simple `.{lo,hi}` string
//! patterns and `any::<T>()`, the `collection`/`option`/`sample` modules,
//! and the `proptest!`/`prop_assert*`/`prop_oneof!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message instead), and generation streams are
//! deterministic per test name + case index rather than sourced from OS
//! entropy. Statistical coverage is cruder but adequate for the invariants
//! tested here.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};

/// The prelude the test files glob-import.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `fn name()` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __name_hash = $crate::test_runner::hash_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__name_hash, __case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the enclosing proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the enclosing proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)*),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Fail the enclosing proptest case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l != *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right` ({})\n  both: `{:?}`",
                    format!($($fmt)*),
                    __l
                ),
            ));
        }
    }};
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union {
            arms: vec![$($crate::Strategy::boxed($arm)),+],
        }
    };
}

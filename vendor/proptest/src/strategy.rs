//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<R: Strategy, F: Fn(Self::Value) -> R>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Randomly permute generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// smaller case and returns the composite one. `depth` bounds nesting;
    /// the remaining upstream tuning parameters are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union {
                arms: vec![leaf.clone(), recurse(cur).boxed()],
            }
            .boxed();
        }
        cur
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, R: Strategy, F: Fn(S::Value) -> R> Strategy for FlatMap<S, F> {
    type Value = R::Value;
    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone)]
pub struct Shuffle<S>(pub(crate) S);

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.next_usize(i + 1);
            v.swap(i, j);
        }
        v
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform choice between strategies of the same value type (built by
/// `prop_oneof!`).
#[derive(Clone)]
pub struct Union<S> {
    /// The candidate strategies.
    pub arms: Vec<S>,
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.next_usize(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        })*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $ty
            }
        })*
    };
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuples and vectors of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// Parse the `.{lo,hi}` pattern shape the workspace uses.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

const CHAR_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Q', '0', '7', ' ', '_', '-', '.', '!', '/', 'é', 'ß', 'λ',
    '中', '✓', '𝄞',
];

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 8));
        let len = lo + rng.next_usize(hi - lo + 1);
        (0..len)
            .map(|_| CHAR_POOL[rng.next_usize(CHAR_POOL.len())])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> Copy for Any<T> {}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_float {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                // Finite values only, so roundtrip equality assertions hold.
                (-1e9f64..1e9).generate(rng) as $ty
            }
        })*
    };
}

arbitrary_float!(f32, f64);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        CHAR_POOL[rng.next_usize(CHAR_POOL.len())]
    }
}

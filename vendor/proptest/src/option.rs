//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<V>`: `None` about a quarter of the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_usize(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

//! Configuration, deterministic RNG, and the failure type used by the
//! `proptest!` macro.

use std::fmt;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of a test name, used to give every property its own
/// deterministic generation stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic generator (splitmix64) seeded from a test name hash and a
/// case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one case of one property.
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        let mut rng = TestRng {
            state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n` must be nonzero).
    pub fn next_usize(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

//! Sampling strategies (`proptest::sample::subsequence`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `amount` elements of `values`, distinct by index and
/// in the original relative order.
pub fn subsequence<T: Clone>(values: Vec<T>, amount: usize) -> Subsequence<T> {
    assert!(
        amount <= values.len(),
        "subsequence amount exceeds source length"
    );
    Subsequence { values, amount }
}

/// See [`subsequence`].
#[derive(Clone)]
pub struct Subsequence<T> {
    values: Vec<T>,
    amount: usize,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        // Partial Fisher-Yates over the index vector, then restore source
        // order among the chosen indices.
        let mut indices: Vec<usize> = (0..self.values.len()).collect();
        for i in 0..self.amount {
            let j = i + rng.next_usize(indices.len() - i);
            indices.swap(i, j);
        }
        let mut chosen: Vec<usize> = indices[..self.amount].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}

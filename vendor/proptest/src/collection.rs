//! Collection strategies (`prop::collection::{vec, btree_set}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A collection size specification: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi > self.lo {
            self.lo + rng.next_usize(self.hi - self.lo)
        } else {
            self.lo
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<V>` with elements from `element` and length from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<V>`; duplicate draws are retried a bounded
/// number of times, so a set may come out smaller than requested when the
/// element domain is nearly exhausted.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 20 + 20 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

//! In-repo substitute for the `crossbeam` API surface this workspace uses.
//!
//! The build environment has no registry access. `channel` maps onto
//! `std::sync::mpsc` (unbounded MPSC; same `RecvTimeoutError` semantics the
//! workspace relies on), and `thread` wraps `std::thread::scope` in
//! crossbeam's closure style (`scope(|s| ...)` where spawned closures
//! receive the scope handle). Performance characteristics differ from the
//! real crate; semantics for the operations used here do not.

/// MPSC channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (std-backed).
pub mod thread {
    use std::any::Any;

    /// Handle passed to scoped closures; spawn more scoped threads from it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle,
        /// crossbeam-style, so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; all threads it spawns are joined before this
    /// returns. Unlike `std::thread::scope`, returns `Err` instead of
    /// propagating a child panic (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn scoped_threads_join_and_collect() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }
}

//! In-repo substitute for the `serde` data model.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde's API surface the workspace actually uses: the
//! `Serialize`/`Deserialize` traits, the full `Serializer`/`Deserializer`
//! data model (as exercised by `seve-rt`'s binary wire codec), access traits
//! (`SeqAccess`, `MapAccess`, `EnumAccess`, `VariantAccess`), seeds, and
//! implementations for the primitives and std containers the protocol
//! messages contain. The derive macros are re-exported from the sibling
//! `serde_derive` stub.
//!
//! Not a general serde replacement: no `#[serde(...)]` attributes, no
//! borrowed-data deserialization, no 128-bit integers.

pub mod de;
pub mod ser;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

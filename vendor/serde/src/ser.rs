//! Serialization half of the data model.

use core::fmt::Display;

/// Error trait every serializer error type implements.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Feed `self` into the serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The serialization data model: one method per shape.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple`].
pub trait SerializeTuple {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_struct`].
pub trait SerializeTupleStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! serialize_primitive {
    ($($ty:ty => $method:ident,)*) => {
        $(impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        })*
    };
}

serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

macro_rules! serialize_tuple_impl {
    ($len:expr => $(($idx:tt $name:ident))+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }
    };
}

serialize_tuple_impl!(1 => (0 A));
serialize_tuple_impl!(2 => (0 A) (1 B));
serialize_tuple_impl!(3 => (0 A) (1 B) (2 C));
serialize_tuple_impl!(4 => (0 A) (1 B) (2 C) (3 D));
serialize_tuple_impl!(5 => (0 A) (1 B) (2 C) (3 D) (4 E));
serialize_tuple_impl!(6 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F));
serialize_tuple_impl!(7 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F) (6 G));
serialize_tuple_impl!(8 => (0 A) (1 B) (2 C) (3 D) (4 E) (5 F) (6 G) (7 H));

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

//! Deserialization half of the data model.

use core::fmt::{self, Display};
use core::marker::PhantomData;

/// Error trait every deserializer error type implements.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Read `Self` out of the deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point (the stateless case is
/// `PhantomData<T>`).
pub trait DeserializeSeed<'de>: Sized {
    /// Value produced.
    type Value;
    /// Read the value out of the deserializer.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// The deserialization data model. Every `deserialize_*` method defaults to
/// [`Deserializer::deserialize_any`]; format implementations override the
/// shapes they encode distinctly.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Deserialize whatever the input contains next.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize raw bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Deserialize a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Skip over whatever the input contains next.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }
}

macro_rules! visit_default {
    ($($method:ident($ty:ty) => $what:expr,)*) => {
        $(
            /// Visit one input shape; the default rejects it.
            fn $method<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
                Err(E::custom(concat!("unexpected ", $what)))
            }
        )*
    };
}

/// Drives deserialization: the format calls back the `visit_*` method
/// matching what it decoded.
pub trait Visitor<'de>: Sized {
    /// Value produced.
    type Value;

    /// Describe what this visitor expects (used in error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default! {
        visit_bool(bool) => "bool",
        visit_i8(i8) => "i8",
        visit_i16(i16) => "i16",
        visit_i32(i32) => "i32",
        visit_i64(i64) => "i64",
        visit_u8(u8) => "u8",
        visit_u16(u16) => "u16",
        visit_u32(u32) => "u32",
        visit_u64(u64) => "u64",
        visit_f32(f32) => "f32",
        visit_f64(f64) => "f64",
        visit_char(char) => "char",
        visit_bytes(&[u8]) => "bytes",
    }

    /// Visit a string slice.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }
    /// Visit an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visit an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visit `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    /// Visit `Some(_)`; the payload follows in the deserializer.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected some"))
    }
    /// Visit `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    /// Visit a newtype struct; the payload follows in the deserializer.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(D::Error::custom("unexpected newtype struct"))
    }
    /// Visit a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected sequence"))
    }
    /// Visit a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected map"))
    }
    /// Visit an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::custom("unexpected enum"))
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>
    where
        Self: Sized,
    {
        self.next_element_seed(PhantomData)
    }
    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserialize the next value through a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>
    where
        Self: Sized,
    {
        self.next_key_seed(PhantomData)
    }
    /// Deserialize the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error>
    where
        Self: Sized,
    {
        self.next_value_seed(PhantomData)
    }
    /// Remaining length, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Accessor for the variant's payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserialize the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// A unit variant: no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// A newtype variant, through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// A newtype variant.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// A tuple variant with `len` fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// A struct variant with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a deserializer yielding it (used for
/// enum variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wrap `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer yielding one `u32`.
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! deserialize_primitive {
    ($($ty:ty, $deserialize:ident, $visit:ident, $expect:expr;)*) => {
        $(impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimitiveVisitor;
                impl<'de> Visitor<'de> for PrimitiveVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(PrimitiveVisitor)
            }
        })*
    };
}

deserialize_primitive! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element_seed(PhantomData)? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T> {
            type Value = std::collections::BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(item) = seq.next_element_seed(PhantomData)? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

impl<'de, T, H> Deserialize<'de> for std::collections::HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T, H>(PhantomData<(T, H)>);
        impl<'de, T, H> Visitor<'de> for SetVisitor<T, H>
        where
            T: Deserialize<'de> + Eq + std::hash::Hash,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashSet<T, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashSet::with_hasher(H::default());
                while let Some(item) = seq.next_element_seed(PhantomData)? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key_seed(PhantomData)? {
                    let value = map.next_value_seed(PhantomData)?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some(key) = map.next_key_seed(PhantomData)? {
                    let value = map.next_value_seed(PhantomData)?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuple_impl {
    ($len:expr => $($name:ident)+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = seq
                                .next_element_seed(PhantomData)?
                                .ok_or_else(|| Acc::Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    };
}

deserialize_tuple_impl!(1 => A);
deserialize_tuple_impl!(2 => A B);
deserialize_tuple_impl!(3 => A B C);
deserialize_tuple_impl!(4 => A B C D);
deserialize_tuple_impl!(5 => A B C D E);
deserialize_tuple_impl!(6 => A B C D E F);
deserialize_tuple_impl!(7 => A B C D E F G);
deserialize_tuple_impl!(8 => A B C D E F G H);

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for _ in 0..N {
                    out.push(
                        seq.next_element_seed(PhantomData)?
                            .ok_or_else(|| A::Error::custom("array too short"))?,
                    );
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}

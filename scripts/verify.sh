#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# --chaos: fault-tolerance smoke slice only. Seeded chaos soaks must end
# consistent with non-zero SessionStats (the faults really happened), and
# clean runs must report exactly zero coping counters (supervision is
# invisible when nothing goes wrong).
if [[ "${1:-}" == "--chaos" ]]; then
  echo "== chaos smoke =="
  cargo test -q -p seve --release --test fault_matrix -- \
    chaos clean_runs_have_zero_coping_counters
  echo "verify.sh --chaos: fault-tolerance smoke passed"
  exit 0
fi

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== driver equivalence smoke =="
# Same seed through the discrete-event simulator and the threaded
# in-process backend must agree (bit-identical for one client).
cargo test -q -p seve --release --test driver_equivalence

echo "== parallel-analyze equivalence smoke =="
# A dense run on 4 analyze threads must be bit-identical (digests, drops,
# byte counts) to the sequential path, and the timer wheel to the heap.
cargo test -q -p seve --release --test parallel_analyze

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== bench smoke =="
cargo bench --workspace --no-run
scripts/bench.sh --smoke

echo "verify.sh: all checks passed"

#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== driver equivalence smoke =="
# Same seed through the discrete-event simulator and the threaded
# in-process backend must agree (bit-identical for one client).
cargo test -q -p seve --release --test driver_equivalence

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy =="
cargo clippy --workspace -- -D warnings

echo "== bench smoke =="
cargo bench --workspace --no-run
scripts/bench.sh --smoke

echo "verify.sh: all checks passed"

#!/usr/bin/env bash
# Perf harness for the push/closure hot paths.
#
# Runs the criterion routing benches (push_cycle + closure_micro) and then
# the bench_push binary, which times indexed vs linear candidate selection,
# Algorithm 6 closures, and a fixed Manhattan People sweep, writing the
# medians to BENCH_push.json at the repo root. See EXPERIMENTS.md.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   seconds-scale subset, writes to a temp file instead of
#             overwriting the checked-in BENCH_push.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== bench_push --smoke =="
    cargo run --release -p seve-bench --bin bench_push -- \
        --smoke --out target/BENCH_push.smoke.json
    echo "== closure-index smoke check =="
    # bench_push asserts indexed == linear closure results in-process; here we
    # additionally require that the inverted-index table was emitted and that
    # the index did strictly less work than a full scan.
    grep -q '"closure_indexed"' target/BENCH_push.smoke.json
    python3 - <<'EOF'
import json
rows = json.load(open("target/BENCH_push.smoke.json"))["closure_indexed"]
assert rows, "closure_indexed table is empty"
for r in rows:
    assert r["entries_visited"] < r["queue_len"], \
        f"index visited {r['entries_visited']} of {r['queue_len']} entries"
print("closure_indexed ok:", rows)
EOF
    exit 0
fi

echo "== criterion: push_cycle =="
cargo bench -p seve-bench --bench push_cycle

echo "== criterion: closure_micro =="
cargo bench -p seve-bench --bench closure_micro

echo "== bench_push -> BENCH_push.json =="
cargo run --release -p seve-bench --bin bench_push -- --out BENCH_push.json

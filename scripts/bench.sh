#!/usr/bin/env bash
# Perf harness for the push/closure hot paths.
#
# Runs the criterion routing benches (push_cycle + closure_micro +
# replay_micro) and then the bench_push, bench_replay, and bench_wire
# binaries: indexed vs linear candidate selection, Algorithm 6 closures, a
# fixed Manhattan People sweep, out-of-order replay reconciliation, and the
# encode-once egress path (pooled encode + shared-payload fan-out vs the
# per-message oracle), writing the medians to BENCH_push.json /
# BENCH_replay.json / BENCH_wire.json at the repo root. See EXPERIMENTS.md.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   seconds-scale subset, writes to temp files instead of
#             overwriting the checked-in BENCH_*.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== bench_push --smoke =="
    cargo run --release -p seve-bench --bin bench_push -- \
        --smoke --out target/BENCH_push.smoke.json
    echo "== closure-index smoke check =="
    # bench_push asserts indexed == linear closure results in-process; here we
    # additionally require that the inverted-index table was emitted and that
    # the index did strictly less work than a full scan.
    grep -q '"closure_indexed"' target/BENCH_push.smoke.json
    python3 - <<'EOF'
import json
rows = json.load(open("target/BENCH_push.smoke.json"))["closure_indexed"]
assert rows, "closure_indexed table is empty"
for r in rows:
    assert r["entries_visited"] < r["queue_len"], \
        f"index visited {r['entries_visited']} of {r['queue_len']} entries"
print("closure_indexed ok:", rows)
EOF
    echo "== parallel-analyze + event-queue smoke check =="
    # bench_push asserts in-process that the batched analysis matches the
    # sequential oracle bit for bit, and that the timer wheel pops the
    # identical event sequence as the heap over a full run. Here we require
    # the tables exist, the partition actually fanned out, and the
    # equivalence flag was set. On hosts with >= 2 cores and a
    # non-oversubscribed row, the persistent pool must also not be slower
    # than the sequential path (speedup >= 1.0); oversubscribed rows
    # (threads > cores) carry no wall-clock promise and are only annotated.
    python3 - <<'EOF'
import json
j = json.load(open("target/BENCH_push.smoke.json"))
assert j["meta"]["event_queue_equiv"] is True, "wheel/heap equivalence not verified"
cores = j["meta"]["host_parallelism"]
rows = j["analyze_parallel"]
assert rows, "analyze_parallel table is empty"
for r in rows:
    assert r["components"] > 1, f"tick did not partition: {r}"
    assert r["threads"] > 1, f"parallel run used {r['threads']} threads"
    assert r["oversubscribed"] == (r["threads"] > cores), \
        f"oversubscription flag inconsistent with host_parallelism={cores}: {r}"
    if cores >= 2 and not r["oversubscribed"]:
        assert r["speedup"] >= 1.0, \
            f"parallel analyze slower than sequential on a {cores}-core host: {r}"
sims = j["sim_scale"]
assert sims, "sim_scale table is empty"
for r in sims:
    assert r["clients"] >= 1024, f"sim_scale row below 1024 clients: {r}"
    assert r["analyze_parallel_ticks"] > 0, \
        f"{r['clients']}-client run never cleared the parallel gate"
print("analyze_parallel ok:", rows)
print("sim_scale ok:", sims)
EOF
    echo "== bench_wire --smoke =="
    cargo run --release -p seve-bench --bin bench_wire -- \
        --smoke --out target/BENCH_wire.smoke.json
    echo "== wire-path smoke check =="
    # bench_wire asserts in-process that the pooled encoding is
    # byte-identical to the to_bytes oracle (including over recycled
    # buffers) and that the pool stops allocating once warm. Here we
    # require those flags were set, that the broadcast-heavy fixture
    # actually shared frames, and that the pool served the steady state.
    # (Wall-clock speedup is host-dependent — recorded in the JSON, never
    # asserted in CI.)
    python3 - <<'EOF'
import json
j = json.load(open("target/BENCH_wire.smoke.json"))
assert j["meta"]["pooled_matches_oracle"] is True, "pooled bytes != oracle"
assert j["meta"]["pool_steady_state_zero_alloc"] is True, \
    "pool kept allocating after warm-up"
fx = j["broadcast_fixture"]
total = fx["frames_encoded"] + fx["frames_reused"]
assert total > 0, "broadcast fixture emitted nothing"
assert fx["reuse_ratio"] >= 0.5, \
    f"broadcast fixture reused only {fx['reuse_ratio']:.0%} of frames"
for r in j["push_cycle_egress"]:
    assert r["pool_hits"] > 10 * r["pool_misses"], \
        f"pool hits did not dominate at {r['clients']} clients: {r}"
print("wire ok: reuse_ratio=%.2f," % fx["reuse_ratio"], j["push_cycle_egress"])
EOF
    echo "== bench_replay --smoke =="
    cargo run --release -p seve-bench --bin bench_replay -- \
        --smoke --out target/BENCH_replay.smoke.json
    echo "== replay-checkpoint smoke check =="
    # bench_replay asserts indexed == oracle results and digests in-process;
    # here we additionally require that the checkpoint chain and commute
    # gate did strictly less replay work than the full-rebuild oracle.
    python3 - <<'EOF'
import json
rows = json.load(open("target/BENCH_replay.smoke.json"))["replay_storm"]
assert rows, "replay_storm table is empty"
for r in rows:
    assert r["entries_replayed"] < r["entries_replayed_linear"], \
        f"checkpointed log replayed {r['entries_replayed']} of " \
        f"{r['entries_replayed_linear']} oracle entries"
    assert r["commute_hits"] > 0, "storm exercised no commute splices"
    assert r["checkpoint_hits"] > 0, "storm exercised no checkpoint resumes"
print("replay_storm ok:", rows)
EOF
    exit 0
fi

echo "== criterion: push_cycle =="
cargo bench -p seve-bench --bench push_cycle

echo "== criterion: closure_micro =="
cargo bench -p seve-bench --bench closure_micro

echo "== criterion: replay_micro =="
cargo bench -p seve-bench --bench replay_micro

echo "== bench_push -> BENCH_push.json =="
cargo run --release -p seve-bench --bin bench_push -- --out BENCH_push.json

echo "== bench_replay -> BENCH_replay.json =="
cargo run --release -p seve-bench --bin bench_replay -- --out BENCH_replay.json

echo "== bench_wire -> BENCH_wire.json =="
cargo run --release -p seve-bench --bin bench_wire -- --out BENCH_wire.json

//! The parallel analyze stage inside a complete session: a Manhattan
//! People run dense enough that every tick's new-action batch clears the
//! `PAR_MIN_ACTIONS` fan-out gate must produce bit-identical protocol
//! outcomes on 4 worker threads and on the sequential path.
//!
//! This is the end-to-end counterpart of the `closure` unit tests and the
//! `batched_analysis_matches_sequential` proptest: here the verdicts feed
//! back into real pushes, drops, completions, and client replicas, so any
//! divergence shows up in the digests.

use seve::net::event::EventQueueKind;
use seve::prelude::*;
use std::sync::Arc;

/// A fast-submitting 128-avatar world: one move per client per 60 ms
/// against the 50 ms tick gives ~107 new actions per analysis — over the
/// 64-action gate — and the clustered spawn keeps footprints overlapping
/// within clusters while staying disjoint across them.
fn dense_world() -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 128,
        walls: 0,
        width: 400.0,
        height: 400.0,
        spawn: SpawnPattern::Clustered {
            cluster_size: 6,
            cluster_radius: 14.0,
        },
        ..ManhattanConfig::default()
    }))
}

fn dense_run(world: &Arc<ManhattanWorld>, threads: usize, queue: EventQueueKind) -> RunResult {
    dense_run_pooled(world, threads, None, queue)
}

fn dense_run_pooled(
    world: &Arc<ManhattanWorld>,
    threads: usize,
    exec_threads: Option<usize>,
    queue: EventQueueKind,
) -> RunResult {
    let mut proto = ProtocolConfig::with_mode(ServerMode::InfoBound);
    proto.analyze_threads = Some(threads);
    proto.exec_threads = exec_threads;
    let suite = SeveSuite::new(proto);
    let sim = SimConfig {
        moves_per_client: 15,
        move_period: SimDuration::from_ms(60),
        event_queue: queue,
        ..SimConfig::default()
    };
    let mut wl = ManhattanWorkload::new(world);
    Simulation::new(Arc::clone(world), &suite, sim).run(&mut wl)
}

#[test]
fn four_thread_analysis_is_bit_identical_to_sequential() {
    let world = dense_world();
    let par = dense_run(&world, 4, EventQueueKind::Wheel);
    let seq = dense_run(&world, 1, EventQueueKind::Wheel);

    // The fan-out gate must actually have engaged — otherwise this test
    // compares the sequential path with itself.
    assert!(
        par.server.stage.analyze_parallel_ticks > 0,
        "no tick cleared the parallel gate; batch sizing regressed"
    );
    assert_eq!(seq.server.stage.analyze_parallel_ticks, 0);

    // Protocol outcomes must be independent of the worker-thread budget.
    assert_eq!(par.stable_digests, seq.stable_digests);
    assert_eq!(par.committed_digest, seq.committed_digest);
    assert_eq!(par.dropped, seq.dropped);
    assert_eq!(par.submitted, seq.submitted);
    assert_eq!(par.total_bytes, seq.total_bytes);
    assert_eq!(par.response_ms.samples(), seq.response_ms.samples());
    assert_eq!(par.duration, seq.duration);
    assert_eq!(par.violations, 0, "Theorem 1 under parallel analysis");

    // The host-side work counters are part of the contract too: the
    // partition must not change what the walks visit or charge.
    assert_eq!(
        par.server.stage.analyze_entries_visited,
        seq.server.stage.analyze_entries_visited
    );
    assert_eq!(
        par.server.stage.analyze_entries_linear,
        seq.server.stage.analyze_entries_linear
    );
}

#[test]
fn protocol_outcomes_are_identical_across_executor_pool_widths() {
    // The persistent work-stealing pool must be invisible to the protocol:
    // a width-1 pool (fully inline, zero worker threads), a width-2 pool,
    // and a width-8 pool (oversubscribed on small hosts — stealing under
    // contention) all have to produce bit-identical runs.
    let world = dense_world();
    let baseline = dense_run_pooled(&world, 4, Some(1), EventQueueKind::Wheel);
    assert!(
        baseline.server.stage.analyze_parallel_ticks > 0,
        "no tick cleared the parallel gate; batch sizing regressed"
    );
    for width in [2usize, 8] {
        let run = dense_run_pooled(&world, 4, Some(width), EventQueueKind::Wheel);
        assert_eq!(
            run.stable_digests, baseline.stable_digests,
            "stable digests diverged at pool width {width}"
        );
        assert_eq!(
            run.committed_digest, baseline.committed_digest,
            "committed digest diverged at pool width {width}"
        );
        assert_eq!(run.dropped, baseline.dropped);
        assert_eq!(run.submitted, baseline.submitted);
        assert_eq!(run.total_bytes, baseline.total_bytes);
        assert_eq!(run.response_ms.samples(), baseline.response_ms.samples());
        assert_eq!(run.duration, baseline.duration);
        assert_eq!(run.violations, 0, "Theorem 1 at pool width {width}");
        assert_eq!(
            run.server.stage.analyze_entries_visited, baseline.server.stage.analyze_entries_visited,
            "work accounting diverged at pool width {width}"
        );
    }
}

#[test]
fn timer_wheel_and_heap_agree_under_parallel_analysis() {
    // Both tentpole halves at once: the wheel-driven dense run must equal
    // the heap-driven one event for event.
    let world = dense_world();
    let wheel = dense_run(&world, 4, EventQueueKind::Wheel);
    let heap = dense_run(&world, 4, EventQueueKind::Heap);
    assert!(wheel.server.stage.analyze_parallel_ticks > 0);
    assert_eq!(wheel.stable_digests, heap.stable_digests);
    assert_eq!(wheel.committed_digest, heap.committed_digest);
    assert_eq!(wheel.total_bytes, heap.total_bytes);
    assert_eq!(wheel.response_ms.samples(), heap.response_ms.samples());
    assert_eq!(wheel.duration, heap.duration);
}

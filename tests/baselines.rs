//! Behavioural contracts of every baseline architecture, end to end.

use seve::prelude::*;
use std::sync::Arc;

fn manhattan(clients: usize, cost_us: u64) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients,
        walls: 200,
        width: 300.0,
        height: 300.0,
        spawn: SpawnPattern::Grid { spacing: 10.0 },
        cost_override_us: Some(cost_us),
        ..ManhattanConfig::default()
    }))
}

fn sim(moves: u32) -> SimConfig {
    SimConfig {
        moves_per_client: moves,
        ..SimConfig::default()
    }
}

#[test]
fn central_is_consistent_and_server_bound() {
    let world = manhattan(10, 5_000);
    let suite = CentralSuite::with_interest_radius(30.0);
    let mut wl = ManhattanWorkload::new(&world);
    let r = Simulation::new(Arc::clone(&world), &suite, sim(20)).run(&mut wl);
    assert_eq!(r.violations, 0, "a single evaluator cannot disagree");
    assert_eq!(r.server.installed, r.submitted);
    // The server pays the game logic; thin clients pay almost nothing.
    assert!(r.server_compute_us > 10 * r.client_compute_us);
    // Uncontended response ≈ RTT.
    assert!((230.0..450.0).contains(&r.response_ms.mean()));
}

#[test]
fn central_collapses_beyond_one_machine() {
    // 10 clients × 5 ms fits in a 300 ms round; 50 clients × 9 ms does not.
    let light = {
        let world = manhattan(10, 5_000);
        let suite = CentralSuite::with_interest_radius(30.0);
        let mut wl = ManhattanWorkload::new(&world);
        Simulation::new(world, &suite, sim(25)).run(&mut wl)
    };
    let heavy = {
        let world = manhattan(50, 9_000);
        let suite = CentralSuite::with_interest_radius(30.0);
        let mut wl = ManhattanWorkload::new(&world);
        Simulation::new(world, &suite, sim(25)).run(&mut wl)
    };
    assert!(
        heavy.response_ms.mean() > 4.0 * light.response_ms.mean(),
        "saturated Central must collapse: {} vs {}",
        heavy.response_ms.mean(),
        light.response_ms.mean()
    );
}

#[test]
fn broadcast_traffic_is_quadratic() {
    let bytes_at = |n: usize| {
        let world = manhattan(n, 500);
        let suite = BroadcastSuite::default();
        let mut wl = ManhattanWorkload::new(&world);
        Simulation::new(world, &suite, sim(15))
            .run(&mut wl)
            .total_bytes
    };
    let b8 = bytes_at(8);
    let b32 = bytes_at(32);
    // 4× the clients → 16× the traffic for a quadratic protocol (allow
    // generous slack for fixed overheads).
    let ratio = b32 as f64 / b8 as f64;
    assert!(
        ratio > 10.0,
        "broadcast should scale ~quadratically, got ratio {ratio:.1}"
    );
}

#[test]
fn seve_traffic_stays_near_central() {
    let world = manhattan(24, 500);
    let mut wl = ManhattanWorkload::new(&world);
    let central = Simulation::new(
        Arc::clone(&world),
        &CentralSuite::with_interest_radius(30.0),
        sim(15),
    )
    .run(&mut wl);
    let mut wl = ManhattanWorkload::new(&world);
    let seve_suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let seve = Simulation::new(Arc::clone(&world), &seve_suite, sim(15)).run(&mut wl);
    let mut wl = ManhattanWorkload::new(&world);
    let bcast =
        Simulation::new(Arc::clone(&world), &BroadcastSuite::default(), sim(15)).run(&mut wl);
    assert!(
        (seve.total_bytes as f64) < 3.0 * central.total_bytes as f64,
        "SEVE must not incur significantly higher network costs (Figure 9): {} vs {}",
        seve.total_bytes,
        central.total_bytes
    );
    assert!(seve.total_bytes < bcast.total_bytes);
}

#[test]
fn ring_diverges_in_dense_combat() {
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 16,
        scry_range: 250.0,
        ..CombatConfig::default()
    }));
    let suite = RingSuite::new(50.0);
    let mut wl = CombatWorkload::new(Arc::clone(&world));
    let r = Simulation::new(Arc::clone(&world), &suite, sim(30)).run(&mut wl);
    assert!(
        r.violations > 0,
        "scrying reads beyond visibility must break RING"
    );
    // And the same world under SEVE stays clean.
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let mut wl = CombatWorkload::new(Arc::clone(&world));
    let r = Simulation::new(world, &suite, sim(30)).run(&mut wl);
    assert_eq!(r.violations, 0);
}

#[test]
fn locking_serializes_conflicts_at_multiple_rtts() {
    // Ring contention: every neighbour pair shares a fork, so a waiter
    // queues behind the full 2×RTT lock cycle of its neighbour.
    let world = Arc::new(DiningWorld::new(DiningConfig {
        philosophers: 12,
        ..DiningConfig::default()
    }));
    let mut wl = DiningWorkload::new(&world);
    let locking =
        Simulation::new(Arc::clone(&world), &LockingSuite::default(), sim(15)).run(&mut wl);
    assert_eq!(locking.violations, 0, "locking is strongly consistent");
    assert_eq!(locking.server.installed, locking.submitted);
    let mut wl = DiningWorkload::new(&world);
    let seve_suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let seve = Simulation::new(world, &seve_suite, sim(15)).run(&mut wl);
    assert!(
        locking.response_ms.mean() > 2.0 * seve.response_ms.mean(),
        "contended locking must be slower than SEVE: {} vs {}",
        locking.response_ms.mean(),
        seve.response_ms.mean()
    );
}

#[test]
fn timestamp_aborts_under_contention_and_stays_consistent() {
    let world = Arc::new(DiningWorld::new(DiningConfig {
        philosophers: 12,
        ..DiningConfig::default()
    }));
    let mut wl = DiningWorkload::new(&world);
    let r = Simulation::new(world, &TimestampSuite::default(), sim(20)).run(&mut wl);
    assert_eq!(r.violations, 0);
    assert!(
        r.server.drops > 0,
        "shared forks must cause certification aborts"
    );
    assert!(r.response_ms.mean() > 238.0);
}

//! The fault-injection matrix: drop / duplicate / reorder / delay /
//! mid-run crash / link partition, crossed over the three fault-capable
//! backends (the deterministic simulator, the threaded in-process runtime,
//! and the real-TCP runtime).
//!
//! What each cell must show follows from the protocol's tolerance
//! envelope, which the session-supervision layer widened:
//!
//! * **Up lane — disorder and duplication absorbed.** Arrival order *is*
//!   serialization order (Algorithm 2 timestamps on receipt), the server
//!   dedups submissions by action id, and completions are idempotent. Any
//!   lossless up-lane fault leaves Theorem 1 and complete-world
//!   convergence intact.
//! * **Up drops.** An up-lane drop silently unsubmits an action (it never
//!   serializes; the session just resolves fewer actions, consistently).
//! * **Down lane — supervised sessions *recover*.** Down-lane frames are
//!   sequence-numbered, resequenced at the client, and retransmitted past
//!   the last cumulative ack on RTO. Drop, duplication, and reordering are
//!   repaired before evaluation, so the oracle stays quiet and replicas
//!   converge — the faults leave traces only in [`SessionStats`].
//! * **Down lane — unsupervised detection, pinned.** With
//!   `SessionParams::unsupervised()` the PR-5 envelope still holds: the
//!   closure premise breaks and the consistency oracle must *detect* it
//!   (violations > 0), never paper over it. Those cells stay here so the
//!   supervision layer can never silently weaken the oracle.
//! * **Crash.** Section III-C: a mid-run client disappearance must leave
//!   the survivors' session fully consistent; the liveness supervisor
//!   reaps the dead lane (synthetic goodbye) instead of stranding it.
//! * **Partition.** A supervised client buffers its up-traffic through the
//!   dark window, reconnects under seeded backoff, presents its session
//!   token, and resumes from its last-acked frame — no delivered frame is
//!   replayed, no undelivered frame is lost.
//!
//! [`SessionStats`]: seve::driver::SessionStats

use seve::core::config::{ProtocolConfig, ServerMode};
use seve::core::pipeline::PipelineServer;
use seve::core::server::SeveSuite;
use seve::driver::{
    run_inproc_session, FaultPlan, FaultPolicy, LinkPartition, SessionConfig, SessionParams,
    SimConfig, Simulation,
};
use seve::rt::{run_client_with, run_server_with, ClientReport, ServerReport};
use seve::world::ids::ClientId;
use seve::world::worlds::dining::{DiningConfig, DiningWorkload, DiningWorld};
use seve::world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use seve::world::GameWorld;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- simulator

fn manhattan(clients: usize) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 200.0,
        height: 200.0,
        walls: 100,
        clients,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        seed: 77,
        ..ManhattanConfig::default()
    }))
}

fn dining(philosophers: usize) -> Arc<DiningWorld> {
    Arc::new(DiningWorld::new(DiningConfig {
        philosophers,
        ..DiningConfig::default()
    }))
}

fn sim_run(
    mode: ServerMode,
    clients: usize,
    moves: u32,
    plan: FaultPlan,
    session: SessionParams,
) -> seve::sim::RunResult {
    let world = manhattan(clients);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(mode));
    let mut wl = ManhattanWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: moves,
        session,
        ..SimConfig::default()
    };
    Simulation::new(world, &suite, sim)
        .with_faults(plan)
        .run(&mut wl)
}

fn sim_dining_run(
    clients: usize,
    moves: u32,
    plan: FaultPlan,
    session: SessionParams,
) -> seve::sim::RunResult {
    let world = dining(clients);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let mut wl = DiningWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: moves,
        session,
        ..SimConfig::default()
    };
    Simulation::new(world, &suite, sim)
        .with_faults(plan)
        .run(&mut wl)
}

fn down_drop_plan(drop: f64) -> FaultPlan {
    FaultPlan {
        down: FaultPolicy {
            drop,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    }
}

fn down_reorder_plan(reorder: f64) -> FaultPlan {
    FaultPlan {
        down: FaultPolicy {
            reorder,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    }
}

#[test]
fn sim_up_disorder_and_duplication_are_absorbed() {
    let plan = FaultPlan {
        up: FaultPolicy {
            duplicate: 0.25,
            reorder: 0.25,
            delay: 0.25,
            ..FaultPolicy::default()
        },
        down: FaultPolicy {
            duplicate: 0.25,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Basic, 6, 10, plan, SessionParams::default());
    assert_eq!(r.violations, 0, "Theorem 1 under lossless up-lane faults");
    assert_eq!(r.replay_divergences, 0);
    assert!(
        r.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "complete-world replicas must converge despite disorder"
    );
}

#[test]
fn sim_up_drop_unsubmits_actions_consistently() {
    let lossy = FaultPlan {
        up: FaultPolicy {
            drop: 0.3,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let r = sim_run(
        ServerMode::Incomplete,
        6,
        10,
        lossy,
        SessionParams::default(),
    );
    let clean = sim_run(
        ServerMode::Incomplete,
        6,
        10,
        FaultPlan::none(),
        SessionParams::default(),
    );
    // Dropped submissions never serialize: fewer actions resolve…
    assert!(
        r.response_ms.count() < clean.response_ms.count(),
        "up-lane drops must lose responses: {} vs {}",
        r.response_ms.count(),
        clean.response_ms.count()
    );
    // …but everything that did serialize is evaluated consistently.
    assert_eq!(r.violations, 0, "survivor prefix stays consistent");
    assert_eq!(r.replay_divergences, 0);
}

#[test]
fn sim_down_drop_is_recovered_by_supervision() {
    let r = sim_run(
        ServerMode::Basic,
        6,
        10,
        down_drop_plan(0.3),
        SessionParams::default(),
    );
    // The go-back-N window refills every hole before evaluation: no
    // violation, no divergence, full convergence — and a non-zero
    // retransmit count proving the faults actually happened.
    assert_eq!(r.violations, 0, "supervised down-lane drops are repaired");
    assert_eq!(r.replay_divergences, 0);
    assert!(
        r.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "replicas must converge under recovered loss"
    );
    assert!(
        r.session.retransmits > 0,
        "recovery must have resent something"
    );
}

#[test]
fn sim_down_drop_detection_pinned_without_supervision() {
    // The PR-5 envelope, pinned: with supervision off the oracle must
    // still see the broken closure premise. This cell guards against the
    // session layer ever weakening the oracle itself.
    let r = sim_run(
        ServerMode::Basic,
        6,
        10,
        down_drop_plan(0.3),
        SessionParams::unsupervised(),
    );
    assert!(
        r.violations > 0,
        "down-lane drops break the closure premise; the oracle must see it"
    );
}

#[test]
fn sim_down_reordering_is_recovered_by_supervision() {
    // The dining table makes every action contend on shared forks, so an
    // inverted prefix that slipped through would shift evaluations. The
    // resequencer must hold early frames until the gap fills instead.
    let r = sim_dining_run(8, 12, down_reorder_plan(0.3), SessionParams::default());
    assert_eq!(
        r.violations, 0,
        "supervised reordering is resequenced before evaluation"
    );
    assert_eq!(r.replay_divergences, 0);
    assert!(
        r.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "replicas must converge under recovered reordering"
    );
    assert!(
        r.session.holds > 0,
        "the resequencer must have parked out-of-order frames"
    );
}

#[test]
fn sim_down_reordering_detection_pinned_without_supervision() {
    let r = sim_dining_run(8, 12, down_reorder_plan(0.3), SessionParams::unsupervised());
    assert!(
        r.replay_rebuilds > 0,
        "inverted down-lane delivery must trigger out-of-order reconciliation"
    );
    assert!(
        r.violations > 0,
        "down-lane reordering is documented degradation the oracle detects"
    );
}

#[test]
fn sim_midrun_crash_leaves_survivors_consistent() {
    let plan = FaultPlan {
        crashes: vec![(ClientId(1), 4)],
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Basic, 6, 10, plan, SessionParams::default());
    assert_eq!(r.violations, 0, "Theorem 1 among performed evaluations");
    // Survivors (all but index 1) agree exactly: the complete world is
    // unaffected by one replica going dark (Section III-C).
    let survivors: Vec<u64> = r
        .stable_digests
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 1)
        .map(|(_, &d)| d)
        .collect();
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas must converge"
    );
}

#[test]
fn sim_chaos_soak_converges_across_seeds() {
    // Seeded chaos: both lanes dropping, duplicating, reordering, and
    // delaying at once, across several fault seeds. Every run must end
    // with a quiet oracle and converged replicas, and the supervision
    // layer must actually have coped (the faults were real).
    for seed in [1, 7, 42] {
        let plan = FaultPlan {
            up: FaultPolicy {
                seed,
                duplicate: 0.1,
                reorder: 0.1,
                delay: 0.1,
                ..FaultPolicy::default()
            },
            down: FaultPolicy {
                seed: seed ^ 0xD0,
                drop: 0.15,
                duplicate: 0.1,
                reorder: 0.15,
                delay: 0.1,
                ..FaultPolicy::default()
            },
            ..FaultPlan::default()
        };
        let r = sim_dining_run(6, 10, plan, SessionParams::default());
        assert_eq!(r.violations, 0, "seed {seed}: chaos must be recovered");
        assert_eq!(r.replay_divergences, 0, "seed {seed}");
        assert!(
            r.stable_digests.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: replicas must converge under chaos"
        );
        assert!(
            r.session.retransmits > 0 || r.session.dups_dropped > 0 || r.session.holds > 0,
            "seed {seed}: the session layer must have seen the chaos"
        );
    }
}

// ------------------------------------------------------- in-process runtime

fn inproc_cfg(moves: u32, faults: FaultPlan) -> SessionConfig {
    let mut cfg = SessionConfig::fast(moves, Duration::from_millis(20), Duration::from_millis(5));
    // Held-back (reordered/delayed) submissions flush on goodbye, so a
    // drain that cannot complete should give up quickly.
    cfg.drain_grace = Duration::from_millis(500);
    cfg.faults = faults;
    cfg
}

#[test]
fn inproc_absorbed_faults_preserve_consistency() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Incomplete));
    let plan = FaultPlan {
        up: FaultPolicy {
            duplicate: 0.2,
            reorder: 0.2,
            delay: 0.2,
            ..FaultPolicy::default()
        },
        down: FaultPolicy {
            duplicate: 0.2,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    let (records, violations) = report.cross_check();
    assert!(records > 0);
    assert_eq!(violations, 0, "Theorem 1 under absorbed threaded faults");
    for c in &report.clients {
        assert!(!c.crashed);
        assert_eq!(c.metrics.replay_divergences, 0);
    }
}

#[test]
fn inproc_midrun_crash_is_reaped_and_tolerated() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let plan = FaultPlan {
        crashes: vec![(ClientId(2), 3)],
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    assert!(report.clients[2].crashed, "client 2 must abort mid-run");
    assert_eq!(
        report.submitted(),
        (N as u64 - 1) * (MOVES as u64) + 3,
        "the crashed client stopped after 3 submissions"
    );
    let (_, violations) = report.cross_check();
    assert_eq!(violations, 0, "survivors' session stays consistent");
    // The liveness supervisor must notice the silent disappearance and
    // reap the lane (synthetic goodbye) instead of stranding the session.
    assert!(
        report.server.metrics.stage.session_reaps >= 1,
        "the crashed client's lane must be reaped"
    );
    // Complete-world survivors see the whole serialization before Stop
    // (channels are FIFO), so their replicas agree exactly.
    let survivors: Vec<u64> = report
        .clients
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .map(|(_, c)| c.stable_digest)
        .collect();
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas must converge: {survivors:x?}"
    );
}

#[test]
fn inproc_down_loss_is_recovered_by_supervision() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let mut report = run_inproc_session(
        Arc::clone(&world),
        &suite,
        &inproc_cfg(MOVES, down_drop_plan(0.3)),
        |_| Box::new(DiningWorkload::new(&world)),
    );
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    let (records, violations) = report.cross_check();
    assert!(records > 0);
    // 30% down-lane loss, zero visible damage: every hole is refilled by
    // retransmission before the replica evaluates past it.
    assert_eq!(violations, 0, "supervised threaded loss is repaired");
    let digests: Vec<u64> = report.clients.iter().map(|c| c.stable_digest).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas must converge under recovered loss: {digests:x?}"
    );
    assert!(
        report.server.metrics.stage.session_retransmits > 0,
        "recovery must have resent something"
    );
}

#[test]
fn inproc_down_loss_detection_pinned_without_supervision() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let mut cfg = inproc_cfg(MOVES, down_drop_plan(0.3));
    cfg.session = SessionParams::unsupervised();
    let mut report = run_inproc_session(Arc::clone(&world), &suite, &cfg, |_| {
        Box::new(DiningWorkload::new(&world))
    });
    // Every submission still reaches the server (the up lane is clean)…
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    let responses = report.responses();
    let (records, violations) = report.cross_check();
    assert!(records > 0);
    // …but a lossy down lane must leave a visible trace: either a client
    // never saw its own serialized outcome (lost response) or it evaluated
    // against a holed prefix (oracle violation). Silent success would mean
    // the harness is lying about delivery.
    assert!(
        violations > 0 || responses < (N * MOVES as usize),
        "30% down-lane loss cannot be invisible: {responses} responses, {violations} violations"
    );
}

#[test]
fn inproc_partition_heals_and_resumes() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let plan = FaultPlan {
        partitions: vec![LinkPartition {
            client: ClientId(1),
            after_submissions: 3,
            duration: Duration::from_millis(250),
        }],
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    // The partitioned client buffered its ups through the dark window and
    // flushed them on resume: nothing was lost.
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    assert!(!report.clients[1].crashed);
    assert!(
        report.clients[1].session.reconnects >= 1,
        "the partitioned client must have healed"
    );
    let (_, violations) = report.cross_check();
    assert_eq!(violations, 0, "resume must not corrupt the session");
    let digests: Vec<u64> = report.clients.iter().map(|c| c.stable_digest).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "all replicas (including the healed one) must converge: {digests:x?}"
    );
}

// ------------------------------------------------------------ real TCP

/// Run one real-TCP session: a server thread plus one thread per client,
/// each client faulted per `plan` and supervised per `session`.
fn tcp_session(
    n: usize,
    moves: u32,
    plan: FaultPlan,
    session: SessionParams,
) -> (ServerReport, Vec<ClientReport>) {
    let w = manhattan(n);
    let mut cfg = ProtocolConfig::with_mode(ServerMode::Basic);
    cfg.rtt = seve::net::time::SimDuration::from_ms(20);
    cfg.tick = seve::net::time::SimDuration::from_ms(5);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let digest = w.initial_state().digest();

    let server = {
        let w = Arc::clone(&w);
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            run_server_with(
                PipelineServer::new(w, cfg),
                listener,
                n,
                Duration::from_millis(5),
                Duration::from_millis(5),
                digest,
                session,
            )
            .expect("server runs")
        })
    };

    let clients: Vec<_> = (0..n)
        .map(|i| {
            let w = Arc::clone(&w);
            let cfg = cfg.clone();
            let plan = plan.clone();
            std::thread::spawn(move || {
                let mut wl = ManhattanWorkload::new(&w);
                run_client_with(
                    Arc::clone(&w),
                    &cfg,
                    addr,
                    ClientId(i as u16),
                    &mut wl,
                    moves,
                    Duration::from_millis(25),
                    &plan,
                    session,
                )
                .expect("client runs")
            })
        })
        .collect();

    let reports = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    (server.join().expect("server thread"), reports)
}

#[test]
fn tcp_down_faults_are_recovered_digest_identical() {
    // One client makes the serialization order deterministic (its own
    // submission order), so the final stable digest must be bit-identical
    // between a faulted-but-recovered run and a clean one.
    let plan = FaultPlan {
        down: FaultPolicy {
            drop: 0.2,
            reorder: 0.2,
            duplicate: 0.1,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let (srv, faulted) = tcp_session(1, 15, plan, SessionParams::fast());
    let (_, clean) = tcp_session(1, 15, FaultPlan::none(), SessionParams::fast());
    assert_eq!(faulted[0].metrics.replay_divergences, 0);
    assert_eq!(
        faulted[0].stable_digest, clean[0].stable_digest,
        "recovered run must end bit-identical to the clean run"
    );
    let coping = srv.metrics.stage.session_retransmits
        + faulted[0].session.dups_dropped
        + faulted[0].session.holds;
    assert!(coping > 0, "the faults must actually have been exercised");
    assert_eq!(
        srv.metrics.stage.pool_outstanding, 0,
        "every pooled egress buffer must be back after shutdown"
    );
}

#[test]
fn tcp_partition_reconnect_resumes_from_last_ack() {
    const N: usize = 3;
    const MOVES: u32 = 10;
    let plan = FaultPlan {
        partitions: vec![LinkPartition {
            client: ClientId(1),
            after_submissions: 3,
            duration: Duration::from_millis(250),
        }],
        ..FaultPlan::default()
    };
    let (srv, reports) = tcp_session(N, MOVES, plan, SessionParams::fast());
    assert!(
        reports[1].session.reconnects >= 1,
        "the partitioned client must dial back in"
    );
    assert!(
        srv.metrics.stage.session_reconnects >= 1,
        "the server must accept the resume"
    );
    for r in &reports {
        assert!(!r.crashed);
        assert_eq!(
            r.metrics.replay_divergences, 0,
            "resume must not replay delivered frames"
        );
    }
    assert_eq!(
        srv.metrics.stage.pool_outstanding, 0,
        "no pooled buffer may leak across a reconnect"
    );
}

#[test]
fn tcp_crashed_client_is_reaped_not_stranded() {
    const N: usize = 3;
    const MOVES: u32 = 10;
    let plan = FaultPlan {
        crashes: vec![(ClientId(2), 3)],
        ..FaultPlan::default()
    };
    // The run completing at all IS the stranded-session fix: the server
    // can only finish once the dead lane is reaped into a synthetic
    // goodbye and its writer + pooled frames are released.
    let (srv, reports) = tcp_session(N, MOVES, plan, SessionParams::fast());
    assert!(reports[2].crashed, "client 2 must abort mid-run");
    assert!(
        srv.metrics.stage.session_reaps >= 1,
        "the dead lane must be reaped by the liveness supervisor"
    );
    for (i, r) in reports.iter().enumerate() {
        if i != 2 {
            assert!(!r.crashed);
            assert_eq!(r.metrics.replay_divergences, 0);
        }
    }
    assert_eq!(
        srv.metrics.stage.pool_outstanding, 0,
        "reaping must recycle the dead client's pooled buffers"
    );
}

#[test]
fn tcp_chaos_soak_stays_consistent_and_leaks_nothing() {
    use seve::core::consistency::ConsistencyOracle;
    for seed in [3, 9] {
        let plan = FaultPlan {
            up: FaultPolicy {
                seed,
                drop: 0.05,
                duplicate: 0.1,
                reorder: 0.1,
                ..FaultPolicy::default()
            },
            down: FaultPolicy {
                seed: seed ^ 0xD0,
                drop: 0.1,
                duplicate: 0.1,
                reorder: 0.1,
                ..FaultPolicy::default()
            },
            ..FaultPlan::default()
        };
        let (srv, mut reports) = tcp_session(3, 8, plan, SessionParams::fast());
        let mut oracle = ConsistencyOracle::new();
        for r in &mut reports {
            assert_eq!(r.metrics.replay_divergences, 0, "seed {seed}");
            for rec in r.metrics.take_eval_records() {
                oracle.observe(&rec);
            }
        }
        assert!(
            oracle.is_consistent(),
            "seed {seed}: Theorem 1 under chaos: {:?}",
            oracle.violations().first()
        );
        let coping: u64 = srv.metrics.stage.session_retransmits
            + reports
                .iter()
                .map(|r| r.session.retransmits + r.session.dups_dropped + r.session.holds)
                .sum::<u64>();
        assert!(
            coping > 0,
            "seed {seed}: the session layer must have seen the chaos"
        );
        assert_eq!(
            srv.metrics.stage.pool_outstanding, 0,
            "seed {seed}: chaos must not leak pooled buffers"
        );
    }
}

#[test]
fn clean_runs_have_zero_coping_counters() {
    // The flip side of the chaos cells: supervision must be *invisible*
    // when nothing goes wrong. Any non-zero coping counter on a clean run
    // means the session layer is doing work — and spending bytes — it has
    // no business doing, and would break golden-digest identity.
    let r = sim_run(
        ServerMode::Basic,
        4,
        8,
        FaultPlan::none(),
        SessionParams::default(),
    );
    assert_eq!(r.session.coping(), 0, "sim: clean runs cope with nothing");
    assert_eq!(r.session.dups_dropped, 0);
    assert_eq!(r.session.holds, 0);

    let world = dining(3);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let report = run_inproc_session(
        Arc::clone(&world),
        &suite,
        &inproc_cfg(6, FaultPlan::none()),
        |_| Box::new(DiningWorkload::new(&world)),
    );
    let stage = &report.server.metrics.stage;
    assert_eq!(
        stage.session_retransmits
            + stage.session_reconnects
            + stage.session_reaps
            + stage.session_sheds,
        0,
        "inproc: clean runs cope with nothing"
    );
    for c in &report.clients {
        assert_eq!(c.session.coping(), 0);
        assert_eq!(c.session.dups_dropped + c.session.holds, 0);
    }

    let (srv, reports) = tcp_session(2, 6, FaultPlan::none(), SessionParams::default());
    let stage = &srv.metrics.stage;
    assert_eq!(
        stage.session_retransmits
            + stage.session_reconnects
            + stage.session_reaps
            + stage.session_sheds,
        0,
        "tcp: clean runs cope with nothing"
    );
    for r in &reports {
        assert_eq!(r.session.coping(), 0);
        assert_eq!(r.session.dups_dropped + r.session.holds, 0);
    }
    assert_eq!(stage.pool_outstanding, 0);
}

//! The fault-injection matrix: drop / duplicate / reorder / delay / mid-run
//! crash, crossed over the two fault-capable backends (the deterministic
//! simulator and the threaded in-process runtime).
//!
//! What each cell must show follows from the protocol's actual tolerance
//! envelope, not from wishful symmetry:
//!
//! * **Up lane — disorder and duplication absorbed.** Arrival order *is*
//!   serialization order (Algorithm 2 timestamps on receipt), the server
//!   dedups submissions by action id, and completions are idempotent. Any
//!   lossless up-lane fault leaves Theorem 1 and complete-world
//!   convergence intact.
//! * **Down lane — duplication absorbed, FIFO load-bearing.** Clients
//!   dedup pushes by queue position, so duplicates are harmless. But the
//!   closure property only promises that an action's support is *sent*
//!   before its dependents; a transport that reorders or drops down-lane
//!   traffic breaks the premise replica evaluation rests on. That is
//!   documented degradation — and the consistency oracle must *detect* it
//!   (violations > 0), never paper over it.
//! * **Drops.** An up-lane drop silently unsubmits an action (it never
//!   serializes; the session just resolves fewer actions, consistently). A
//!   down-lane drop punches a hole in a replica's prefix, which the oracle
//!   reports.
//! * **Crash.** Section III-C: a mid-run client disappearance must leave
//!   the survivors' session fully consistent.

use seve::core::config::{ProtocolConfig, ServerMode};
use seve::core::server::SeveSuite;
use seve::driver::{
    run_inproc_session, FaultPlan, FaultPolicy, SessionConfig, SimConfig, Simulation,
};
use seve::world::ids::ClientId;
use seve::world::worlds::dining::{DiningConfig, DiningWorkload, DiningWorld};
use seve::world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- simulator

fn manhattan(clients: usize) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 200.0,
        height: 200.0,
        walls: 100,
        clients,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        seed: 77,
        ..ManhattanConfig::default()
    }))
}

fn sim_run(mode: ServerMode, clients: usize, moves: u32, plan: FaultPlan) -> seve::sim::RunResult {
    let world = manhattan(clients);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(mode));
    let mut wl = ManhattanWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: moves,
        ..SimConfig::default()
    };
    Simulation::new(world, &suite, sim)
        .with_faults(plan)
        .run(&mut wl)
}

#[test]
fn sim_up_disorder_and_duplication_are_absorbed() {
    let plan = FaultPlan {
        up: FaultPolicy {
            duplicate: 0.25,
            reorder: 0.25,
            delay: 0.25,
            ..FaultPolicy::default()
        },
        down: FaultPolicy {
            duplicate: 0.25,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Basic, 6, 10, plan);
    assert_eq!(r.violations, 0, "Theorem 1 under lossless up-lane faults");
    assert_eq!(r.replay_divergences, 0);
    assert!(
        r.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "complete-world replicas must converge despite disorder"
    );
}

#[test]
fn sim_up_drop_unsubmits_actions_consistently() {
    let lossy = FaultPlan {
        up: FaultPolicy {
            drop: 0.3,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Incomplete, 6, 10, lossy);
    let clean = sim_run(ServerMode::Incomplete, 6, 10, FaultPlan::none());
    // Dropped submissions never serialize: fewer actions resolve…
    assert!(
        r.response_ms.count() < clean.response_ms.count(),
        "up-lane drops must lose responses: {} vs {}",
        r.response_ms.count(),
        clean.response_ms.count()
    );
    // …but everything that did serialize is evaluated consistently.
    assert_eq!(r.violations, 0, "survivor prefix stays consistent");
    assert_eq!(r.replay_divergences, 0);
}

#[test]
fn sim_down_drop_is_detected_by_the_oracle() {
    let plan = FaultPlan {
        down: FaultPolicy {
            drop: 0.3,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Basic, 6, 10, plan);
    // Holes in the serialized prefix shift every later evaluation; the
    // oracle must report it, not mask it.
    assert!(
        r.violations > 0,
        "down-lane drops break the closure premise; the oracle must see it"
    );
}

#[test]
fn sim_down_reordering_is_detected_by_the_oracle() {
    // Manhattan's spread-out spawns are too sparse for this cell: a
    // reordered prefix re-evaluates to the same outcomes, so the oracle
    // (correctly) stays quiet. The dining table makes every action contend
    // on shared forks, so inverted delivery must shift evaluations.
    let world = dining(8);
    let plan = FaultPlan {
        down: FaultPolicy {
            reorder: 0.3,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let mut wl = DiningWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: 12,
        ..SimConfig::default()
    };
    let r = Simulation::new(world, &suite, sim)
        .with_faults(plan)
        .run(&mut wl);
    assert!(
        r.replay_rebuilds > 0,
        "inverted down-lane delivery must trigger out-of-order reconciliation"
    );
    assert!(
        r.violations > 0,
        "down-lane reordering is documented degradation the oracle detects"
    );
}

#[test]
fn sim_midrun_crash_leaves_survivors_consistent() {
    let plan = FaultPlan {
        crashes: vec![(ClientId(1), 4)],
        ..FaultPlan::default()
    };
    let r = sim_run(ServerMode::Basic, 6, 10, plan);
    assert_eq!(r.violations, 0, "Theorem 1 among performed evaluations");
    // Survivors (all but index 1) agree exactly: the complete world is
    // unaffected by one replica going dark (Section III-C).
    let survivors: Vec<u64> = r
        .stable_digests
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 1)
        .map(|(_, &d)| d)
        .collect();
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas must converge"
    );
}

// ------------------------------------------------------- in-process runtime

fn dining(philosophers: usize) -> Arc<DiningWorld> {
    Arc::new(DiningWorld::new(DiningConfig {
        philosophers,
        ..DiningConfig::default()
    }))
}

fn inproc_cfg(moves: u32, faults: FaultPlan) -> SessionConfig {
    let mut cfg = SessionConfig::fast(moves, Duration::from_millis(20), Duration::from_millis(5));
    // Held-back (reordered/delayed) submissions flush on goodbye, so a
    // drain that cannot complete should give up quickly.
    cfg.drain_grace = Duration::from_millis(500);
    cfg.faults = faults;
    cfg
}

#[test]
fn inproc_absorbed_faults_preserve_consistency() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Incomplete));
    let plan = FaultPlan {
        up: FaultPolicy {
            duplicate: 0.2,
            reorder: 0.2,
            delay: 0.2,
            ..FaultPolicy::default()
        },
        down: FaultPolicy {
            duplicate: 0.2,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    let (records, violations) = report.cross_check();
    assert!(records > 0);
    assert_eq!(violations, 0, "Theorem 1 under absorbed threaded faults");
    for c in &report.clients {
        assert!(!c.crashed);
        assert_eq!(c.metrics.replay_divergences, 0);
    }
}

#[test]
fn inproc_midrun_crash_is_tolerated() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let plan = FaultPlan {
        crashes: vec![(ClientId(2), 3)],
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    assert!(report.clients[2].crashed, "client 2 must abort mid-run");
    assert_eq!(
        report.submitted(),
        (N as u64 - 1) * (MOVES as u64) + 3,
        "the crashed client stopped after 3 submissions"
    );
    let (_, violations) = report.cross_check();
    assert_eq!(violations, 0, "survivors' session stays consistent");
    // Complete-world survivors see the whole serialization before Stop
    // (channels are FIFO), so their replicas agree exactly.
    let survivors: Vec<u64> = report
        .clients
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != 2)
        .map(|(_, c)| c.stable_digest)
        .collect();
    assert!(
        survivors.windows(2).all(|w| w[0] == w[1]),
        "surviving replicas must converge: {survivors:x?}"
    );
}

#[test]
fn inproc_down_loss_degrades_detectably() {
    const N: usize = 4;
    const MOVES: u32 = 10;
    let world = dining(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let plan = FaultPlan {
        down: FaultPolicy {
            drop: 0.3,
            ..FaultPolicy::default()
        },
        ..FaultPlan::default()
    };
    let mut report =
        run_inproc_session(Arc::clone(&world), &suite, &inproc_cfg(MOVES, plan), |_| {
            Box::new(DiningWorkload::new(&world))
        });
    // Every submission still reaches the server (the up lane is clean)…
    assert_eq!(report.submitted(), (N as u64) * (MOVES as u64));
    let responses = report.responses();
    let (records, violations) = report.cross_check();
    assert!(records > 0);
    // …but a lossy down lane must leave a visible trace: either a client
    // never saw its own serialized outcome (lost response) or it evaluated
    // against a holed prefix (oracle violation). Silent success would mean
    // the harness is lying about delivery.
    assert!(
        violations > 0 || responses < (N * MOVES as usize),
        "30% down-lane loss cannot be invisible: {responses} responses, {violations} violations"
    );
}

//! Bit-exact reproducibility: every suite, twice, identical results.
//!
//! The simulator exists to make the paper's experiments reproducible; that
//! only holds if runs are deterministic functions of their configuration.

use seve::prelude::*;
use std::sync::Arc;

fn fingerprint(r: &RunResult) -> (Vec<u64>, Option<u64>, u64, u64, Vec<f64>) {
    (
        r.stable_digests.clone(),
        r.committed_digest,
        r.total_bytes,
        r.dropped,
        r.response_ms.samples().to_vec(),
    )
}

fn manhattan_run<P: ProtocolSuite<ManhattanWorld>>(suite: &P) -> RunResult {
    // (generic over suite so one helper serves every protocol family)
    let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 10,
        walls: 400,
        width: 300.0,
        height: 300.0,
        spawn: SpawnPattern::Clustered {
            cluster_size: 5,
            cluster_radius: 12.0,
        },
        cost_override_us: Some(1_500),
        seed: 42,
        ..ManhattanConfig::default()
    }));
    let mut wl = ManhattanWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: 20,
        seed: 99,
        ..SimConfig::default()
    };
    Simulation::new(world, suite, sim).run(&mut wl)
}

#[test]
fn every_suite_is_deterministic() {
    macro_rules! check {
        ($name:expr, $suite:expr) => {{
            let a = manhattan_run(&$suite);
            let b = manhattan_run(&$suite);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{} must be deterministic",
                $name
            );
        }};
    }
    check!(
        "SEVE",
        SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound))
    );
    check!(
        "SEVE-nodrop",
        SeveSuite::new(ProtocolConfig::with_mode(ServerMode::FirstBound))
    );
    check!(
        "incomplete",
        SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Incomplete))
    );
    check!(
        "basic",
        SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic))
    );
    check!("central", CentralSuite::with_interest_radius(30.0));
    check!("broadcast", BroadcastSuite::default());
    check!("ring", RingSuite::new(30.0));
    check!("locking", LockingSuite::default());
    check!("timestamp", TimestampSuite::default());
}

#[test]
fn different_seeds_change_the_run() {
    let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 8,
        walls: 100,
        cost_override_us: Some(1_000),
        ..ManhattanConfig::default()
    }));
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let run = |seed: u64| {
        let mut wl = ManhattanWorkload::new(&world);
        let sim = SimConfig {
            moves_per_client: 15,
            seed,
            ..SimConfig::default()
        };
        Simulation::new(Arc::clone(&world), &suite, sim).run(&mut wl)
    };
    let a = run(1);
    let b = run(2);
    // Different stagger seeds → different serialization orders → different
    // samples (with overwhelming probability for 8×15 moves).
    assert_ne!(
        a.response_ms.samples(),
        b.response_ms.samples(),
        "stagger seed must matter"
    );
    // But consistency is seed-independent.
    assert_eq!(a.violations, 0);
    assert_eq!(b.violations, 0);
}

#[test]
fn world_generation_is_seed_stable() {
    use seve::world::GameWorld;
    let w1 = ManhattanWorld::new(ManhattanConfig {
        seed: 7,
        ..ManhattanConfig::default()
    });
    let w2 = ManhattanWorld::new(ManhattanConfig {
        seed: 7,
        ..ManhattanConfig::default()
    });
    assert_eq!(w1.initial_state().digest(), w2.initial_state().digest());
    let w3 = ManhattanWorld::new(ManhattanConfig {
        seed: 8,
        ..ManhattanConfig::default()
    });
    assert_ne!(w1.initial_state().digest(), w3.initial_state().digest());
}

//! Driver equivalence: the same workload and seed, run through the
//! discrete-event simulator and through the threaded in-process backend,
//! must tell the same story.
//!
//! The two substrates share one engine layer and one driver crate but
//! differ in everything timing-related (virtual event queue vs real OS
//! threads), so the comparison is scoped to what the protocol actually
//! guarantees:
//!
//! * **One client** — serialization order equals submission order on any
//!   substrate, and the workloads are time-free, so the final states must
//!   be *bit-identical*: same ζ_S digest, same client stable digest, same
//!   resolved-action count.
//! * **Many clients** — interleaving is timing-dependent, so digests may
//!   legitimately differ; what must match is the protocol outcome: every
//!   submission resolves, and Theorem 1 holds on both substrates.

use seve::core::config::{ProtocolConfig, ServerMode};
use seve::core::server::SeveSuite;
use seve::driver::{run_inproc_session, SessionConfig, SimConfig, Simulation};
use seve::world::worlds::manhattan::{
    ManhattanConfig, ManhattanWorkload, ManhattanWorld, SpawnPattern,
};
use std::sync::Arc;
use std::time::Duration;

fn world(clients: usize) -> Arc<ManhattanWorld> {
    Arc::new(ManhattanWorld::new(ManhattanConfig {
        width: 200.0,
        height: 200.0,
        walls: 100,
        clients,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        seed: 77,
        ..ManhattanConfig::default()
    }))
}

#[test]
fn single_client_session_is_bit_identical_across_backends() {
    const MOVES: u32 = 20;
    let w = world(1);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Incomplete));

    let mut wl = ManhattanWorkload::new(&w);
    let sim = Simulation::new(
        Arc::clone(&w),
        &suite,
        SimConfig {
            moves_per_client: MOVES,
            ..SimConfig::default()
        },
    )
    .run(&mut wl);

    let session = SessionConfig::fast(MOVES, Duration::from_millis(10), Duration::from_millis(5));
    let inproc = run_inproc_session(Arc::clone(&w), &suite, &session, |_| {
        Box::new(ManhattanWorkload::new(&w))
    });

    assert_eq!(sim.violations, 0);
    assert_eq!(sim.submitted, MOVES as u64);
    assert_eq!(inproc.submitted(), MOVES as u64);
    assert_eq!(
        sim.response_ms.count(),
        inproc.responses(),
        "both backends must resolve every action"
    );
    assert_eq!(
        Some(sim.stable_digests[0]),
        inproc.clients.first().map(|c| c.stable_digest),
        "final replica state must be bit-identical"
    );
    assert_eq!(
        sim.committed_digest, inproc.server.committed_digest,
        "final ζ_S must be bit-identical"
    );
}

#[test]
fn multi_client_sessions_agree_on_protocol_outcome() {
    const N: usize = 4;
    const MOVES: u32 = 12;
    let w = world(N);
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Incomplete));

    let mut wl = ManhattanWorkload::new(&w);
    let sim = Simulation::new(
        Arc::clone(&w),
        &suite,
        SimConfig {
            moves_per_client: MOVES,
            ..SimConfig::default()
        },
    )
    .run(&mut wl);

    let session = SessionConfig::fast(MOVES, Duration::from_millis(15), Duration::from_millis(5));
    let mut inproc = run_inproc_session(Arc::clone(&w), &suite, &session, |_| {
        Box::new(ManhattanWorkload::new(&w))
    });

    assert_eq!(sim.submitted, (N as u64) * (MOVES as u64));
    assert_eq!(inproc.submitted(), (N as u64) * (MOVES as u64));
    assert_eq!(sim.violations, 0, "Theorem 1 in the simulator");
    let (records, violations) = inproc.cross_check();
    assert!(records > 0);
    assert_eq!(violations, 0, "Theorem 1 on the threaded backend");
    assert!(
        inproc.responses() >= N * (MOVES as usize) * 9 / 10,
        "threaded backend must resolve nearly every action"
    );
}

//! Theorem 1 across every protocol variant and every world.
//!
//! "If the server follows Algorithm 5 and all clients follow Algorithm 4,
//! then in a distributed snapshot of the system the states ζ_CS at the
//! clients and the state ζ_S at the server will never be inconsistent."
//!
//! These runs enable `verify_rebuilds`, the expensive mode that re-evaluates
//! the whole replay suffix on out-of-order arrivals to *prove* the
//! Algorithm 6 closure contract (re-evaluation never changes an outcome),
//! on top of the oracle's cross-replica checks.

use seve::prelude::*;
use std::sync::Arc;

fn strict(mode: ServerMode) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::with_mode(mode);
    cfg.verify_rebuilds = true;
    cfg
}

fn assert_consistent(label: &str, r: &RunResult) {
    assert_eq!(r.violations, 0, "{label}: oracle violations");
    assert_eq!(r.missing_read_evals, 0, "{label}: missing reads");
    assert_eq!(r.replay_divergences, 0, "{label}: closure contract");
    assert!(r.evals_checked > 0, "{label}: oracle saw evaluations");
}

const MODES: [ServerMode; 4] = [
    ServerMode::Basic,
    ServerMode::Incomplete,
    ServerMode::FirstBound,
    ServerMode::InfoBound,
];

#[test]
fn manhattan_is_consistent_under_every_mode() {
    for mode in MODES {
        let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
            clients: 12,
            walls: 300,
            width: 300.0,
            height: 300.0,
            spawn: SpawnPattern::Grid { spacing: 10.0 },
            cost_override_us: Some(2_000),
            ..ManhattanConfig::default()
        }));
        let suite = SeveSuite::new(strict(mode));
        let mut wl = ManhattanWorkload::new(&world);
        let sim = SimConfig {
            moves_per_client: 25,
            ..SimConfig::default()
        };
        let r = Simulation::new(world, &suite, sim).run(&mut wl);
        assert_consistent(&format!("manhattan/{mode:?}"), &r);
    }
}

#[test]
fn dining_is_consistent_under_every_mode() {
    for mode in MODES {
        let world = Arc::new(DiningWorld::new(DiningConfig {
            philosophers: 16,
            ..DiningConfig::default()
        }));
        let suite = SeveSuite::new(strict(mode));
        let mut wl = DiningWorkload::new(&world);
        let sim = SimConfig {
            moves_per_client: 20,
            ..SimConfig::default()
        };
        let r = Simulation::new(world, &suite, sim).run(&mut wl);
        assert_consistent(&format!("dining/{mode:?}"), &r);
        // The fork invariants survive serialization: committed state exists
        // for every mode with an authoritative server.
        if mode != ServerMode::Basic {
            assert!(r.committed_digest.is_some());
        }
    }
}

#[test]
fn combat_is_consistent_under_every_mode() {
    for mode in MODES {
        let world = Arc::new(CombatWorld::new(CombatConfig {
            clients: 12,
            ..CombatConfig::default()
        }));
        let suite = SeveSuite::new(strict(mode));
        let mut wl = CombatWorkload::new(Arc::clone(&world));
        let sim = SimConfig {
            moves_per_client: 25,
            ..SimConfig::default()
        };
        let r = Simulation::new(world, &suite, sim).run(&mut wl);
        assert_consistent(&format!("combat/{mode:?}"), &r);
    }
}

#[test]
fn basic_mode_replicas_converge_to_identical_states() {
    // The basic protocol ships everything to everyone: after quiescence all
    // stable replicas must be bit-identical (the strongest form of the
    // theorem, only available in the complete-world mode).
    let world = Arc::new(DiningWorld::new(DiningConfig {
        philosophers: 10,
        ..DiningConfig::default()
    }));
    let suite = SeveSuite::new(strict(ServerMode::Basic));
    let mut wl = DiningWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: 15,
        ..SimConfig::default()
    };
    let r = Simulation::new(world, &suite, sim).run(&mut wl);
    assert!(
        r.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "all replicas identical"
    );
}

#[test]
fn redundant_completions_preserve_consistency() {
    // Section III-C: "letting each client send completion messages for
    // every action it applies" — the failure-tolerance option must not
    // change any outcome (the server asserts digest equality internally).
    let world = Arc::new(ManhattanWorld::new(ManhattanConfig {
        clients: 10,
        walls: 100,
        width: 200.0,
        height: 200.0,
        spawn: SpawnPattern::Grid { spacing: 8.0 },
        cost_override_us: Some(1_000),
        ..ManhattanConfig::default()
    }));
    let mut cfg = strict(ServerMode::InfoBound);
    cfg.redundant_completions = true;
    let suite = SeveSuite::new(cfg);
    let mut wl = ManhattanWorkload::new(&world);
    let sim = SimConfig {
        moves_per_client: 20,
        ..SimConfig::default()
    };
    let r = Simulation::new(world, &suite, sim).run(&mut wl);
    assert_consistent("redundant-completions", &r);
    assert!(r.server.installed > 0);
}

#[test]
fn seve_committed_state_matches_a_serial_replay() {
    // ζ_S must equal an omniscient serial execution of the committed
    // prefix. The basic-mode replicas ARE that serial execution (every
    // client applies every action in order), so run both modes over the
    // identical workload and compare final object values on the moved
    // avatars.
    let mk_world = || {
        Arc::new(ManhattanWorld::new(ManhattanConfig {
            clients: 8,
            walls: 0,
            width: 200.0,
            height: 200.0,
            spawn: SpawnPattern::Grid { spacing: 10.0 },
            cost_override_us: Some(500),
            seed: 1234,
            ..ManhattanConfig::default()
        }))
    };
    let sim = SimConfig {
        moves_per_client: 15,
        drain: SimDuration::from_secs(30),
        ..SimConfig::default()
    };

    let world = mk_world();
    let suite = SeveSuite::new(strict(ServerMode::InfoBound));
    let mut wl = ManhattanWorkload::new(&world);
    let seve = Simulation::new(world, &suite, sim.clone()).run(&mut wl);

    let world = mk_world();
    let suite = SeveSuite::new(strict(ServerMode::Basic));
    let mut wl = ManhattanWorkload::new(&world);
    let basic = Simulation::new(world, &suite, sim).run(&mut wl);

    // Same seeds → same move streams → same serialized outcomes. All of
    // SEVE's submissions must commit, and its authoritative state digest
    // must equal the basic-mode replicas' digest.
    assert_eq!(seve.server.installed + seve.dropped, seve.submitted);
    assert_eq!(
        seve.committed_digest.expect("ζ_S exists"),
        basic.stable_digests[0],
        "ζ_S diverged from the serial execution"
    );
}

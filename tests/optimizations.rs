//! The Section IV optimizations, measured.
//!
//! * IV-A Inconsequential action elimination: clients subscribe to interest
//!   classes; a human player's pushes should not carry insect ambience.
//! * IV-B Area culling: an arrow's influence travels with its velocity; a
//!   client behind the archer need not receive it.

use seve::core::engine::ServerNode;
use seve::core::msg::{Payload, ToClient, ToServer};
use seve::core::pipeline::PipelineServer;
use seve::prelude::*;
use seve::world::worlds::combat::{CLASS_AMBIENT, CLASS_COMBAT};
use std::sync::Arc;

fn batch_action_count(
    msgs: &[(ClientId, ToClient<<CombatWorld as GameWorld>::Action>)],
    to: ClientId,
) -> usize {
    msgs.iter()
        .filter(|(c, _)| *c == to)
        .map(|(_, m)| match m {
            ToClient::Batch { items } => items
                .iter()
                .filter(|i| matches!(i.payload, Payload::Action(_)))
                .count(),
            _ => 0,
        })
        .sum()
}

#[test]
fn interest_filtering_elides_insect_ambience() {
    // Clients 0..2 are insects, 3..5 humans, all adjacent. An insect's
    // move is CLASS_AMBIENT; with filtering on, humans must not receive it.
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 6,
        insect_fraction: 0.5,
        spawn_positions: Some(vec![
            (10.0, 10.0),
            (12.0, 10.0),
            (14.0, 10.0),
            (16.0, 10.0),
            (18.0, 10.0),
            (20.0, 10.0),
        ]),
        ..CombatConfig::default()
    }));
    assert!(world.is_insect(ClientId(0)));
    assert!(!world.is_insect(ClientId(4)));

    let run = |filtering: bool| {
        let mut cfg = ProtocolConfig::with_mode(ServerMode::FirstBound);
        cfg.interest_filtering = filtering;
        let mut server: PipelineServer<CombatWorld> = PipelineServer::new(Arc::clone(&world), cfg);
        let state = world.initial_state();
        let bug_move = world
            .walk(ClientId(0), 0, seve::world::Vec2::new(1.0, 0.0), &state)
            .expect("insect move");
        assert_eq!(bug_move.influence().class, CLASS_AMBIENT);
        let mut down = Vec::new();
        server.deliver(
            SimTime::ZERO,
            ClientId(0),
            ToServer::Submit { action: bug_move },
            &mut down,
        );
        server.push_tick(SimTime::from_ms(60), &mut down);
        down
    };

    let unfiltered = run(false);
    assert!(
        batch_action_count(&unfiltered, ClientId(4)) > 0,
        "without filtering the human hears the insect"
    );
    let filtered = run(true);
    assert_eq!(
        batch_action_count(&filtered, ClientId(4)),
        0,
        "with filtering the human is spared the ambience"
    );
    // The insect's fellow insects (interested in everything) still hear it.
    assert!(batch_action_count(&filtered, ClientId(1)) > 0);
    // And the issuer always gets its own action back.
    assert!(batch_action_count(&filtered, ClientId(0)) > 0);
}

#[test]
fn velocity_culling_spares_clients_behind_the_arrow() {
    // Archer at x=100 shoots a target at x=125 (arrow flying +x). A
    // bystander at x=45 sits just inside the static influence sphere
    // (shot distance 25 + motion slack + its own 30-unit reach ≈ 59.8)
    // but behind the arrow; culling should spare them.
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 3,
        width: 400.0,
        height: 100.0,
        arrow_range: 30.0,
        speed: 8.0,
        spawn_positions: Some(vec![(45.0, 50.0), (100.0, 50.0), (125.0, 50.0)]),
        ..CombatConfig::default()
    }));

    let run = |culling: bool| {
        let mut cfg = ProtocolConfig::with_mode(ServerMode::FirstBound);
        cfg.velocity_culling = culling;
        let mut server: PipelineServer<CombatWorld> = PipelineServer::new(Arc::clone(&world), cfg);
        let state = world.initial_state();
        let shot = world
            .shoot(ClientId(1), 0, ObjectId(2), &state)
            .expect("archer shoots the target");
        assert_eq!(shot.influence().class, CLASS_COMBAT);
        let mut down = Vec::new();
        server.deliver(
            SimTime::ZERO,
            ClientId(1),
            ToServer::Submit { action: shot },
            &mut down,
        );
        server.push_tick(SimTime::from_ms(60), &mut down);
        down
    };

    let without = run(false);
    assert!(
        batch_action_count(&without, ClientId(0)) > 0,
        "static sphere covers the bystander"
    );
    let with = run(true);
    assert_eq!(
        batch_action_count(&with, ClientId(0)),
        0,
        "the arrow flies away from the bystander"
    );
    // The client ahead of the arrow still receives it.
    assert!(batch_action_count(&with, ClientId(2)) > 0);
}

#[test]
fn interest_filtering_preserves_consistency_end_to_end() {
    // Filtering prunes deliveries but never causal support: a full run
    // with insects must stay violation-free.
    let world = Arc::new(CombatWorld::new(CombatConfig {
        clients: 16,
        insect_fraction: 0.25,
        ..CombatConfig::default()
    }));
    let mut cfg = ProtocolConfig::with_mode(ServerMode::InfoBound);
    cfg.interest_filtering = true;
    let suite = SeveSuite::new(cfg);
    let mut wl = CombatWorkload::new(Arc::clone(&world));
    let sim = SimConfig {
        moves_per_client: 25,
        ..SimConfig::default()
    };
    let r = Simulation::new(world, &suite, sim).run(&mut wl);
    assert_eq!(r.violations, 0);
    assert_eq!(r.missing_read_evals, 0);
}

//! Golden-equivalence guard for the staged server pipeline.
//!
//! The three SEVE server engines were refactored from standalone state
//! machines into policy configurations of one shared `core::pipeline`. The
//! simulator path must be *bit-identical* before and after: same messages,
//! same costs, same link traffic, same replica digests. These tests pin a
//! digest of every externally observable `RunResult` field for two paper
//! configurations — the Figure 6 scalability point at 32 clients and the
//! Figure 8 dense-crowd point with dropping on — plus the Basic and
//! Incomplete engines on the same 32-client world. The golden constants
//! were captured from the pre-refactor engines; any drift in serialization
//! order, routing, cost accounting, or egress assembly changes a digest.

use seve::core::config::ServerMode;
use seve::sim::experiment::{
    dense_protocol, dense_world, paper_protocol, paper_sim, paper_world, run_seve, Scale,
};
use seve::sim::harness::{RunResult, SimConfig};

/// FNV-1a over a byte stream; stable and dependency-free.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn samples(&mut self, s: &[f64]) {
        self.u64(s.len() as u64);
        for &v in s {
            self.f64(v);
        }
    }
}

/// Digest of everything a protocol run exposes to the figures: response
/// summaries, byte/message counters, drop counts, consistency counters, and
/// the replica state digests. Server metrics *summaries* (batch sizes,
/// stage profile) are deliberately excluded — they are diagnostics, not
/// figure inputs — but the compute totals are included because they drive
/// the simulated machine model.
fn run_digest(r: &RunResult) -> u64 {
    let mut d = Digest::new();
    d.bytes(r.protocol.as_bytes());
    d.u64(r.clients as u64);
    d.samples(r.response_ms.samples());
    d.samples(r.drop_notice_ms.samples());
    d.u64(r.submitted);
    d.u64(r.dropped);
    d.u64(r.total_bytes);
    d.u64(r.server_down_bytes);
    d.u64(r.server_up_bytes);
    d.u64(r.total_msgs);
    d.u64(r.violations as u64);
    d.u64(r.missing_read_evals);
    d.u64(r.replay_divergences);
    d.u64(r.evals_checked);
    d.u64(r.client_compute_us);
    d.u64(r.server_compute_us);
    d.u64(r.server.submissions);
    d.u64(r.server.drops);
    d.u64(r.server.installed);
    d.u64(r.server.compute_us);
    d.u64(r.server.max_queue_len as u64);
    for &s in &r.stable_digests {
        d.u64(s);
    }
    d.u64(r.committed_digest.unwrap_or(0));
    d.u64(r.duration.as_micros());
    d.0
}

/// Figure 6 at 32 clients (quick scale): the InfoBound SEVE server on the
/// Table I Manhattan world.
fn fig6_run(mode: ServerMode) -> RunResult {
    let world = paper_world(32, Scale::Quick);
    let sim = paper_sim(Scale::Quick);
    run_seve(&world, mode, paper_protocol(mode), &sim)
}

/// Figure 8 dense-crowd point (spacing 6, visibility 30, effect range 6)
/// with dropping on — exercises Algorithm 7 verdicts, the Eq. 1 sphere
/// with the interest-radius override, and drop notices.
fn fig8_run() -> RunResult {
    let world = dense_world(30.0, 6.0, 6.0, Scale::Quick);
    let sim = SimConfig {
        moves_per_client: 30,
        ..SimConfig::default()
    };
    let proto = dense_protocol(ServerMode::InfoBound, 30.0, 6.0);
    run_seve(&world, ServerMode::InfoBound, proto, &sim)
}

// Golden digests captured from the pre-refactor engines (commit 115cafd
// lineage) under the vendored deterministic dependency stubs.
const GOLD_FIG6_INFOBOUND: u64 = 0x7e3c7d54b132cbe;
const GOLD_FIG6_FIRSTBOUND: u64 = 0x41467ed9a3781e2d;
const GOLD_FIG6_BASIC: u64 = 0x460be8a40d3676ab;
const GOLD_FIG6_INCOMPLETE: u64 = 0x7a12ebfb132ff0d;
const GOLD_FIG8_DENSE_DROP: u64 = 0x2b4949e600e4762a;

#[test]
fn fig6_infobound_matches_pre_refactor_engines() {
    assert_eq!(
        run_digest(&fig6_run(ServerMode::InfoBound)),
        GOLD_FIG6_INFOBOUND
    );
}

#[test]
fn fig6_firstbound_matches_pre_refactor_engines() {
    assert_eq!(
        run_digest(&fig6_run(ServerMode::FirstBound)),
        GOLD_FIG6_FIRSTBOUND
    );
}

#[test]
fn fig6_basic_matches_pre_refactor_engines() {
    assert_eq!(run_digest(&fig6_run(ServerMode::Basic)), GOLD_FIG6_BASIC);
}

#[test]
fn fig6_incomplete_matches_pre_refactor_engines() {
    assert_eq!(
        run_digest(&fig6_run(ServerMode::Incomplete)),
        GOLD_FIG6_INCOMPLETE
    );
}

#[test]
fn fig8_dense_with_dropping_matches_pre_refactor_engines() {
    assert_eq!(run_digest(&fig8_run()), GOLD_FIG8_DENSE_DROP);
}

/// Capture helper: `cargo test -p seve --test golden_equivalence -- --ignored --nocapture`
/// prints the digests to re-pin after an *intentional* behaviour change.
#[test]
#[ignore]
fn print_golden_digests() {
    println!(
        "GOLD_FIG6_INFOBOUND: u64 = {:#x};",
        run_digest(&fig6_run(ServerMode::InfoBound))
    );
    println!(
        "GOLD_FIG6_FIRSTBOUND: u64 = {:#x};",
        run_digest(&fig6_run(ServerMode::FirstBound))
    );
    println!(
        "GOLD_FIG6_BASIC: u64 = {:#x};",
        run_digest(&fig6_run(ServerMode::Basic))
    );
    println!(
        "GOLD_FIG6_INCOMPLETE: u64 = {:#x};",
        run_digest(&fig6_run(ServerMode::Incomplete))
    );
    println!(
        "GOLD_FIG8_DENSE_DROP: u64 = {:#x};",
        run_digest(&fig8_run())
    );
}

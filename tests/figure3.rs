//! The Figure 3 causality chain, scripted.
//!
//! "Consider the case when entity C shoots an arrow at entity B at time
//! t = 0, and entity B shoots at entity A at time t = ∆ ... entity B
//! should die before it actually shot the arrow. However ... the client
//! with entity A ... subsequently announces entity A to be dead. The
//! client with entity A could have determined entity B's death only if it
//! also knew that entity C had shot entity B."
//!
//! We drive the combat engines directly: C's kill-shot on B serializes
//! before B's shot on A, so B's shot must evaluate as a no-op ("a dead
//! archer fires nothing") on every replica — including A's, which cannot
//! see C. SEVE delivers the causal support; RING does not.

use seve::baselines::ring::RingServer;
use seve::core::engine::{ClientNode, ServerNode};
use seve::core::pipeline::PipelineServer;
use seve::core::SeveClient;
use seve::prelude::*;
use seve::world::worlds::combat::{CombatAction, HP};
use std::sync::Arc;

/// Three combatants in a row: A at x=0, B at x=130, C at x=260. With a
/// RING visibility of 150, A↔B and B↔C see each other but A cannot see C.
/// One arrow kills (damage 100).
fn arena() -> Arc<CombatWorld> {
    Arc::new(CombatWorld::new(CombatConfig {
        clients: 3,
        width: 400.0,
        height: 100.0,
        arrow_range: 150.0,
        arrow_damage: 100, // one-shot kills: B dies instantly
        spawn_positions: Some(vec![(0.0, 50.0), (130.0, 50.0), (260.0, 50.0)]),
        ..CombatConfig::default()
    }))
}

/// Build the two shots from per-client views of `setup`: C kills B, then B
/// shoots A.
fn shots(world: &CombatWorld, setup: &WorldState) -> (CombatAction, CombatAction) {
    let c_shoots_b = world
        .shoot(ClientId(2), 0, ObjectId(1), setup)
        .expect("C targets B");
    let b_shoots_a = world
        .shoot(ClientId(1), 0, ObjectId(0), setup)
        .expect("B targets A");
    (c_shoots_b, b_shoots_a)
}

#[test]
fn seve_preserves_the_arrow_causality() {
    let world = arena();
    let setup = world.initial_state();
    let (c_shot, b_shot) = shots(&world, &setup);

    // Drive a bounded server and client A by hand. All replicas bootstrap
    // from the same scripted arena.
    let cfg = ProtocolConfig::with_mode(ServerMode::FirstBound);
    let mut server: PipelineServer<CombatWorld> =
        PipelineServer::new(Arc::clone(&world), cfg.clone());
    let mut client_a: SeveClient<CombatWorld> =
        SeveClient::new(ClientId(0), Arc::clone(&world), &cfg);

    let t = SimTime::ZERO;
    let mut down = Vec::new();
    // C's kill-shot arrives first, B's shot second: positions 1 and 2.
    server.deliver(
        t,
        ClientId(2),
        seve::core::msg::ToServer::Submit {
            action: c_shot.clone(),
        },
        &mut down,
    );
    server.deliver(
        t,
        ClientId(1),
        seve::core::msg::ToServer::Submit {
            action: b_shot.clone(),
        },
        &mut down,
    );
    assert!(down.is_empty());
    server.push_tick(SimTime::from_ms(60), &mut down);

    // A is within B's arrow influence, so A receives a batch. The batch
    // must ALSO carry C's shot — the transitive support A needs even
    // though A cannot see C.
    let (dest, batch) = down
        .iter()
        .find(|(c, m)| *c == ClientId(0) && matches!(m, seve::core::msg::ToClient::Batch { .. }))
        .expect("A receives a batch");
    assert_eq!(*dest, ClientId(0));
    let seve::core::msg::ToClient::Batch { items } = batch else {
        unreachable!()
    };
    let actions: Vec<u64> = items
        .iter()
        .filter(|i| matches!(i.payload, seve::core::msg::Payload::Action(_)))
        .map(|i| i.pos)
        .collect();
    assert_eq!(
        actions,
        vec![1, 2],
        "C's shot must precede B's in A's batch"
    );

    // Apply the batch at client A: B dies at pos 1, so B's shot at pos 2
    // evaluates as a no-op and A survives.
    let mut up = Vec::new();
    client_a.deliver(SimTime::from_ms(300), batch.clone(), &mut up);
    let a_hp = client_a
        .stable()
        .attr(ObjectId(0), HP)
        .and_then(|v| v.as_i64())
        .expect("A's hp");
    assert_eq!(a_hp, 100, "A must survive: B was dead before firing");
    let b_hp = client_a
        .stable()
        .attr(ObjectId(1), HP)
        .and_then(|v| v.as_i64())
        .expect("B's hp");
    assert_eq!(b_hp, 0, "A learned of B's death through the causal chain");
}

#[test]
fn ring_breaks_the_arrow_causality() {
    let world = arena();
    let setup = world.initial_state();
    let (c_shot, b_shot) = shots(&world, &setup);

    let cfg = ProtocolConfig::with_mode(ServerMode::Incomplete);
    let mut server: RingServer<CombatWorld> =
        RingServer::new(Arc::clone(&world), cfg.clone(), 150.0);
    let mut client_a: SeveClient<CombatWorld> =
        SeveClient::new(ClientId(0), Arc::clone(&world), &cfg);

    let t = SimTime::ZERO;
    let mut down = Vec::new();
    server.deliver(
        t,
        ClientId(2),
        seve::core::msg::ToServer::Submit { action: c_shot },
        &mut down,
    );
    server.deliver(
        t,
        ClientId(1),
        seve::core::msg::ToServer::Submit { action: b_shot },
        &mut down,
    );
    server.push_tick(SimTime::from_ms(60), &mut down);

    // RING forwards B's shot to A (A sees B) but NOT C's shot (A cannot
    // see C, and RING does no causal analysis).
    let batches_to_a: Vec<_> = down
        .iter()
        .filter(|(c, m)| *c == ClientId(0) && matches!(m, seve::core::msg::ToClient::Batch { .. }))
        .collect();
    assert_eq!(batches_to_a.len(), 1);
    let seve::core::msg::ToClient::Batch { items } = &batches_to_a[0].1 else {
        unreachable!()
    };
    assert_eq!(
        items.len(),
        1,
        "only B's shot — the causal support is missing"
    );

    let mut up = Vec::new();
    client_a.deliver(SimTime::from_ms(300), batches_to_a[0].1.clone(), &mut up);
    let a_hp = client_a
        .stable()
        .attr(ObjectId(0), HP)
        .and_then(|v| v.as_i64())
        .expect("A's hp");
    assert_eq!(
        a_hp, 0,
        "RING wrongly announces A dead: it evaluated B's shot without \
         knowing B was already dead"
    );
}

//! The financial-transaction hazard of Section I, end to end: "objects
//! being lost or duplicated during a financial transaction."
//!
//! The trading world's conservation laws (total gold and total items are
//! invariant) hold on every SEVE replica; the unsynchronized Broadcast
//! model's replicas break them under contention.

use seve::prelude::*;
use std::sync::Arc;

fn market() -> Arc<TradeWorld> {
    Arc::new(TradeWorld::new(TradeConfig {
        traders: 12,
        starting_items: 2, // scarce stock: plenty of conflicting buys
        ..TradeConfig::default()
    }))
}

fn sim(moves: u32) -> SimConfig {
    SimConfig {
        moves_per_client: moves,
        stagger: false, // synchronized buying frenzies maximize contention
        ..SimConfig::default()
    }
}

#[test]
fn seve_conserves_gold_and_items_on_every_replica() {
    let world = market();
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::InfoBound));
    let mut wl = TradeWorkload::new(Arc::clone(&world));
    let r = Simulation::new(Arc::clone(&world), &suite, sim(25)).run(&mut wl);
    assert_eq!(r.violations, 0);
    // Every stable replica and the authoritative state conserve.
    // (Digests equal across replicas would be too strong — incomplete
    // views — but the conservation check needs per-replica states, which
    // the harness exposes as digests; instead verify ζ_S directly through
    // a serial replay equivalence: basic mode below.)
    assert!(r.server.installed > 0);

    // The strongest check: basic mode (complete replicas) over the same
    // workload conserves on every replica byte-for-byte.
    let suite = SeveSuite::new(ProtocolConfig::with_mode(ServerMode::Basic));
    let mut wl = TradeWorkload::new(Arc::clone(&world));
    let basic = Simulation::new(Arc::clone(&world), &suite, sim(25)).run(&mut wl);
    assert_eq!(basic.violations, 0);
    assert!(
        basic.stable_digests.windows(2).all(|w| w[0] == w[1]),
        "complete replicas identical"
    );
}

#[test]
fn broadcast_duplicates_items_under_contention() {
    // Same market, same frenzy, no serialization-and-reconcile: issuers
    // apply their own trades against stale local state and replicas
    // diverge — the oracle sees it, and conservation breaks somewhere.
    let world = market();
    let suite = BroadcastSuite::default();
    let mut wl = TradeWorkload::new(Arc::clone(&world));
    let r = Simulation::new(Arc::clone(&world), &suite, sim(25)).run(&mut wl);
    assert!(
        r.violations > 0,
        "unsynchronized trading must diverge, got {} violations",
        r.violations
    );
}

#[test]
fn seve_trade_responses_stay_bounded_under_total_contention() {
    // Trades reach across the whole market (influence = ring diameter), so
    // every pair conflicts — the worst case for the closure machinery. The
    // response bound must still hold.
    let world = market();
    let cfg = ProtocolConfig::with_mode(ServerMode::InfoBound);
    let bound = cfg.response_bound_ms();
    let suite = SeveSuite::new(cfg);
    let mut wl = TradeWorkload::new(Arc::clone(&world));
    let r = Simulation::new(Arc::clone(&world), &suite, sim(20)).run(&mut wl);
    assert!(
        r.response_ms.mean() < bound + 150.0,
        "mean response {} vs bound {}",
        r.response_ms.mean(),
        bound
    );
}

//! Client-failure tolerance (Section III-C).
//!
//! "The Incomplete World Model ... can be made tolerant of client failures
//! at a reasonable cost in network bandwidth, by letting each client send
//! completion messages for every action it applies, not just its own. With
//! this change, the only case in which the server does not receive a
//! response to some action is when all clients that evaluate that action
//! have failed."
//!
//! We drive the engines by hand: a client submits a grab, receives it, and
//! then crashes before (or instead of) anything else happening. Without
//! redundant completions the install pipeline stalls behind the dead
//! client's action; with them, a neighbouring replica's completion keeps
//! ζ_S advancing.

use seve::core::engine::{ClientNode, ServerNode};
use seve::core::msg::ToServer;
use seve::core::pipeline::PipelineServer;
use seve::core::SeveClient;
use seve::prelude::*;
use std::sync::Arc;

fn ring(n: usize) -> Arc<DiningWorld> {
    Arc::new(DiningWorld::new(DiningConfig {
        philosophers: n,
        ..DiningConfig::default()
    }))
}

/// Pump one round: the (about-to-fail) client 0 and its neighbour client 1
/// both submit grabs; the server analyzes and pushes; then client 0
/// crashes (we discard its batch). Returns how far ζ_S advanced after
/// client 1 processes its own batch.
fn run_round(redundant: bool) -> u64 {
    let world = ring(4);
    let mut cfg = ProtocolConfig::with_mode(ServerMode::InfoBound);
    cfg.redundant_completions = redundant;
    let mut server: PipelineServer<DiningWorld> =
        PipelineServer::new(Arc::clone(&world), cfg.clone());
    let mut alive: SeveClient<DiningWorld> = SeveClient::new(ClientId(1), Arc::clone(&world), &cfg);

    let t = SimTime::ZERO;
    let mut down = Vec::new();

    // Client 0 submits, then crashes. Client 1 (conflicting neighbour —
    // they share fork 1) submits and stays alive.
    server.deliver(
        t,
        ClientId(0),
        ToServer::Submit {
            action: world.grab(ClientId(0), 0),
        },
        &mut down,
    );
    let mut up = Vec::new();
    let a1 = world.grab(ClientId(1), 0);
    alive.submit(t, a1, &mut up);
    for m in up.drain(..) {
        server.deliver(t, ClientId(1), m, &mut down);
    }

    server.tick(SimTime::from_ms(50), &mut down);
    down.clear();
    server.push_tick(SimTime::from_ms(60), &mut down);

    // Client 0's batch is lost with the crash. Client 1 processes its own
    // batch — which, because the grabs conflict, contains BOTH actions.
    for (dest, msg) in down.drain(..) {
        if dest == ClientId(1) {
            let mut up = Vec::new();
            alive.deliver(SimTime::from_ms(240), msg, &mut up);
            for m in up {
                server.deliver(SimTime::from_ms(360), ClientId(1), m, &mut Vec::new());
            }
        }
    }
    server.last_committed()
}

#[test]
fn without_redundant_completions_the_dead_clients_action_stalls() {
    // Only the issuer completes its own action; client 0 is dead, so
    // nothing installs past position 0.
    assert_eq!(run_round(false), 0, "install pipeline stalls");
}

#[test]
fn redundant_completions_survive_a_client_crash() {
    // The surviving neighbour evaluated both actions and completed both:
    // ζ_S advances through the dead client's action.
    assert_eq!(run_round(true), 2, "both actions install");
}

#[test]
fn crash_mid_run_with_redundancy_keeps_the_rest_of_the_world_consistent() {
    // Full-harness version: run the dining ring with redundant completions
    // where one philosopher only ever submits a single grab (an effective
    // early crash of its workload) — everything still commits and every
    // replica agrees.
    struct OneShotThenSilent {
        inner: DiningWorkload,
    }
    impl Workload<DiningWorld> for OneShotThenSilent {
        fn next_action(
            &mut self,
            client: ClientId,
            seq: u32,
            view: &WorldState,
            now_ms: u64,
        ) -> Option<<DiningWorld as GameWorld>::Action> {
            if client == ClientId(0) && seq >= 1 {
                return None; // client 0 goes silent after one action
            }
            self.inner.next_action(client, seq, view, now_ms)
        }
    }

    let world = ring(8);
    let mut cfg = ProtocolConfig::with_mode(ServerMode::InfoBound);
    cfg.redundant_completions = true;
    let suite = SeveSuite::new(cfg);
    let mut wl = OneShotThenSilent {
        inner: DiningWorkload::new(&world),
    };
    let sim = SimConfig {
        moves_per_client: 12,
        ..SimConfig::default()
    };
    let r = Simulation::new(world, &suite, sim).run(&mut wl);
    assert_eq!(r.violations, 0);
    assert!(
        r.server.installed + r.dropped >= r.submitted,
        "every submitted action resolves despite the silent client: {} + {} vs {}",
        r.server.installed,
        r.dropped,
        r.submitted
    );
}
